//! A persistent on-disk cache of simulation results.
//!
//! Every [`SimPoint`] determines its [`SimResult`]
//! completely (workload identity, machine configuration, run options), so a
//! result computed once can be reused by every later process. The cache
//! stores one small binary file per point, named by a stable 64-bit FNV-1a
//! digest of the point (plus a format-version salt), under a directory that
//! defaults to `target/wp-matrix-cache` and can be moved with the
//! `WPSDM_MATRIX_CACHE_DIR` environment variable or the binaries'
//! `--matrix-cache-dir` flag.
//!
//! Invalidation is by digest: changing any component of the point — the
//! trace seed or length, a cache parameter, a policy, or the workload
//! (trace workloads hash their *content digest*, not their path) — changes
//! the digest and therefore misses. Bumping [`CACHE_FORMAT_VERSION`]
//! invalidates every stored result at once; that is the knob to turn when a
//! simulator change alters what results mean. Unreadable, truncated, or
//! version-mismatched files are treated as misses, never as errors.
//!
//! Values round-trip exactly: every `f64` is stored via its IEEE-754 bit
//! pattern, so a result served from disk is bit-identical to the freshly
//! simulated one (asserted by `tests/matrix_cache.rs`).

use std::hash::{Hash, Hasher};
use std::io::Write;
use std::path::{Path, PathBuf};

use wp_cache::{DCacheStats, ICacheStats};
use wp_cpu::SimResult;
use wp_energy::ActivityCounts;
use wp_workloads::Fnv1a;

use crate::engine::SimPoint;

/// Bump to invalidate every previously stored result (the digest of every
/// point changes). Bump whenever the simulator's meaning of a result
/// changes — not for pure performance work, which must be bit-identical.
/// (2: records additionally store an independent verification digest of
/// the point, so a filename-digest collision can no longer serve one
/// point's result for another. 3: results grew the outcome-class coverage
/// counters — `single_way_load_hits`, `seldm_predicted_sa`,
/// `victim_list_hits`, `dirty_evictions`, `ras_correct`.)
pub const CACHE_FORMAT_VERSION: u32 = 3;

/// Magic prefix of a stored result file.
const MAGIC: &[u8; 4] = b"WPSM";

/// Salt distinguishing the stored *verification* digest from the filename
/// digest: the two hash the same point through the same FNV-1a core but
/// from different initial states, so a 64-bit collision in one is
/// independent of a collision in the other (~2⁻¹²⁸ combined for distinct
/// points, vs. the 2⁻⁶⁴ a single digest gives).
const VERIFY_SALT: u64 = 0x9e37_79b9_7f4a_7c15;

/// Serialized size of one result: magic + version + digest + verification
/// digest + 41 numeric fields of 8 bytes each.
const RECORD_BYTES: usize = 4 + 4 + 8 + 8 + 41 * 8;

/// The persistent result store the engine consults before simulating.
#[derive(Debug, Clone)]
pub struct MatrixCache {
    dir: PathBuf,
}

impl MatrixCache {
    /// A cache rooted at `dir` (created lazily on first store).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self { dir: dir.into() }
    }

    /// The default cache location: `$WPSDM_MATRIX_CACHE_DIR`, or
    /// `target/wp-matrix-cache` relative to the working directory.
    pub fn default_dir() -> PathBuf {
        std::env::var_os("WPSDM_MATRIX_CACHE_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("target/wp-matrix-cache"))
    }

    /// A cache at [`MatrixCache::default_dir`].
    pub fn at_default_dir() -> Self {
        Self::new(Self::default_dir())
    }

    /// The directory results are stored under.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The stable digest naming `point`'s result file.
    pub fn digest(point: &SimPoint) -> u64 {
        let mut hasher = Fnv1a::new();
        CACHE_FORMAT_VERSION.hash(&mut hasher);
        point.hash(&mut hasher);
        hasher.finish()
    }

    /// A second, independently salted digest of `point`, stored *inside*
    /// the record and re-checked on load: the widened key check that keeps
    /// a filename-digest collision between two distinct points from
    /// serving one point's result for the other.
    pub fn verify_digest(point: &SimPoint) -> u64 {
        let mut hasher = Fnv1a::new();
        VERIFY_SALT.hash(&mut hasher);
        CACHE_FORMAT_VERSION.hash(&mut hasher);
        point.hash(&mut hasher);
        hasher.finish()
    }

    fn path_for(&self, digest: u64) -> PathBuf {
        self.dir.join(format!("{digest:016x}.wpsim"))
    }

    /// Loads the stored result for `point`, if an intact one exists.
    pub fn load(&self, point: &SimPoint) -> Option<SimResult> {
        self.load_at(Self::digest(point), point)
    }

    /// [`MatrixCache::load`] with the filename digest supplied by the
    /// caller. Hidden test seam: forcing two distinct points onto one
    /// digest simulates a 64-bit collision, and the stored verification
    /// digest must still keep their results apart.
    #[doc(hidden)]
    pub fn load_at(&self, digest: u64, point: &SimPoint) -> Option<SimResult> {
        let bytes = std::fs::read(self.path_for(digest)).ok()?;
        decode(&bytes, digest, Self::verify_digest(point))
    }

    /// Stores `result` for `point`. Best-effort: I/O failures (read-only
    /// filesystem, permissions) silently degrade to an uncached run. The
    /// write goes through a per-process temporary file renamed into place,
    /// so concurrent processes never observe a torn record.
    pub fn store(&self, point: &SimPoint, result: &SimResult) {
        self.store_at(Self::digest(point), point, result);
    }

    /// [`MatrixCache::store`] with the filename digest supplied by the
    /// caller; see [`MatrixCache::load_at`].
    #[doc(hidden)]
    pub fn store_at(&self, digest: u64, point: &SimPoint, result: &SimResult) {
        if std::fs::create_dir_all(&self.dir).is_err() {
            return;
        }
        let tmp = self
            .dir
            .join(format!("{digest:016x}.wpsim.tmp{}", std::process::id()));
        let write = std::fs::File::create(&tmp).and_then(|mut file| {
            file.write_all(&encode(result, digest, Self::verify_digest(point)))
        });
        if write.is_ok() {
            let _ = std::fs::rename(&tmp, self.path_for(digest));
        }
        let _ = std::fs::remove_file(&tmp);
    }
}

fn encode(result: &SimResult, digest: u64, verify: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(RECORD_BYTES);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&CACHE_FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&digest.to_le_bytes());
    out.extend_from_slice(&verify.to_le_bytes());
    // The value stream is exactly [`SimResult::fields`] — the canonical
    // field enumeration behind `exact_eq` — so the record format and the
    // equality contract can never disagree on what a result *is*.
    // `decode_fields` rebuilds the struct in the same declaration order;
    // the round-trip test in this module pins the pairing.
    for (_, bits) in result.fields() {
        out.extend_from_slice(&bits.to_le_bytes());
    }
    debug_assert_eq!(out.len(), RECORD_BYTES);
    out
}

/// A checked little-endian field reader over a stored record. Every read
/// is bounds-checked and reports exhaustion as `None`, so a truncated or
/// corrupt record decodes to a cache miss — never a panic — even if the
/// caller's length pre-check is ever weakened.
struct Fields<'a> {
    bytes: &'a [u8],
}

impl Fields<'_> {
    fn u64(&mut self) -> Option<u64> {
        let field = self.bytes.get(..8)?;
        let value = u64::from_le_bytes(field.try_into().ok()?);
        self.bytes = &self.bytes[8..];
        Some(value)
    }
}

fn decode(bytes: &[u8], digest: u64, verify: u64) -> Option<SimResult> {
    if bytes.len() != RECORD_BYTES || bytes.get(0..4)? != MAGIC {
        return None;
    }
    let version = u32::from_le_bytes(bytes.get(4..8)?.try_into().ok()?);
    let stored_digest = u64::from_le_bytes(bytes.get(8..16)?.try_into().ok()?);
    let stored_verify = u64::from_le_bytes(bytes.get(16..24)?.try_into().ok()?);
    if version != CACHE_FORMAT_VERSION || stored_digest != digest || stored_verify != verify {
        return None;
    }
    let mut fields = Fields {
        bytes: &bytes[24..],
    };
    decode_fields(&mut fields)
}

/// Decodes the numeric fields through the checked reader; any exhausted
/// read aborts the whole decode via `?` (the existing miss path).
fn decode_fields(fields: &mut Fields<'_>) -> Option<SimResult> {
    let mut u = || fields.u64();
    let cycles = u()?;
    let activity = ActivityCounts {
        cycles: u()?,
        instructions: u()?,
        int_ops: u()?,
        fp_ops: u()?,
        loads: u()?,
        stores: u()?,
        branches: u()?,
        l2_accesses: u()?,
    };
    let dcache = DCacheStats {
        loads: u()?,
        load_misses: u()?,
        stores: u()?,
        store_misses: u()?,
        evictions: u()?,
        direct_mapped_accesses: u()?,
        parallel_accesses: u()?,
        way_predicted_accesses: u()?,
        sequential_accesses: u()?,
        mispredicted_accesses: u()?,
        way_predictions: u()?,
        way_predictions_correct: u()?,
        seldm_predicted_dm: u()?,
        seldm_predicted_dm_correct: u()?,
        conflicting_blocks_flagged: u()?,
        single_way_load_hits: u()?,
        seldm_predicted_sa: u()?,
        victim_list_hits: u()?,
        dirty_evictions: u()?,
        cache_energy: f64::from_bits(u()?),
        prediction_energy: f64::from_bits(u()?),
    };
    let icache = ICacheStats {
        fetches: u()?,
        fetch_misses: u()?,
        sawp_correct: u()?,
        btb_correct: u()?,
        ras_correct: u()?,
        no_prediction: u()?,
        mispredicted: u()?,
        cache_energy: f64::from_bits(u()?),
        prediction_energy: f64::from_bits(u()?),
    };
    let memory_accesses = u()?;
    let branch_accuracy = f64::from_bits(u()?);
    Some(SimResult {
        cycles,
        activity,
        dcache,
        icache,
        memory_accesses,
        branch_accuracy,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{simulate_workload, MachineConfig, RunOptions};
    use wp_workloads::Benchmark;

    fn point() -> SimPoint {
        SimPoint::new(
            Benchmark::Li,
            MachineConfig::baseline(),
            RunOptions::quick().with_ops(3_000),
        )
    }

    fn temp_cache(tag: &str) -> MatrixCache {
        let dir = std::env::temp_dir().join(format!(
            "wpsdm-matrix-cache-test-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        MatrixCache::new(dir)
    }

    #[test]
    fn digests_are_stable_and_distinguish_points() {
        let a = point();
        let b = SimPoint::new(
            Benchmark::Li,
            MachineConfig::baseline(),
            RunOptions::quick().with_ops(3_000).with_seed(7),
        );
        assert_eq!(MatrixCache::digest(&a), MatrixCache::digest(&a));
        assert_ne!(MatrixCache::digest(&a), MatrixCache::digest(&b));
    }

    #[test]
    fn results_round_trip_bit_identically() {
        let cache = temp_cache("roundtrip");
        let point = point();
        let result = simulate_workload(&point.workload, &point.machine, &point.options);
        assert!(cache.load(&point).is_none());
        cache.store(&point, &result);
        let loaded = cache.load(&point).expect("stored result must load");
        assert_eq!(loaded, result);
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn truncated_records_decode_to_a_miss_at_every_length() {
        // Even with the whole-record length pre-check bypassed, the field
        // reader must treat a record cut off at *any* byte as a miss — the
        // decode-error path — never panic.
        let point = point();
        let result = simulate_workload(&point.workload, &point.machine, &point.options);
        let digest = MatrixCache::digest(&point);
        let verify = MatrixCache::verify_digest(&point);
        let full = encode(&result, digest, verify);
        assert_eq!(decode(&full, digest, verify), Some(result));
        for len in 0..full.len() {
            assert_eq!(
                decode(&full[..len], digest, verify),
                None,
                "truncated to {len}"
            );
        }
        // A record with a valid header but exhausted fields exercises the
        // checked reader directly.
        let mut fields = Fields {
            bytes: &full[24..full.len() - 1],
        };
        assert_eq!(decode_fields(&mut fields), None);
    }

    #[test]
    fn forced_digest_collisions_do_not_cross_contaminate() {
        // Two distinct points whose *filename* digests are forced equal:
        // the verification digest stored inside the record must keep their
        // results apart — point B reads a miss, never point A's result.
        let cache = temp_cache("collision");
        let a = point();
        let b = SimPoint::new(
            Benchmark::Li,
            MachineConfig::baseline(),
            RunOptions::quick().with_ops(3_000).with_seed(99),
        );
        assert_ne!(a, b);
        assert_ne!(
            MatrixCache::verify_digest(&a),
            MatrixCache::verify_digest(&b),
            "distinct points must have distinct verification digests"
        );
        let result_a = simulate_workload(&a.workload, &a.machine, &a.options);
        let collided = 0xdead_beef_cafe_f00d;
        cache.store_at(collided, &a, &result_a);
        // The rightful owner loads through the forced digest...
        assert_eq!(cache.load_at(collided, &a), Some(result_a));
        // ...the colliding point must not.
        assert_eq!(
            cache.load_at(collided, &b),
            None,
            "a digest collision must decode as a miss for the other point"
        );
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn verify_digest_is_independent_of_the_filename_digest() {
        // The two digests must not be trivially related (e.g. equal, or a
        // constant offset apart) — otherwise a collision in one implies a
        // collision in the other and the widened check buys nothing.
        let points: Vec<SimPoint> = (0..16)
            .map(|i| {
                SimPoint::new(
                    Benchmark::Li,
                    MachineConfig::baseline(),
                    RunOptions::quick().with_ops(1_000 + i),
                )
            })
            .collect();
        let deltas: std::collections::HashSet<u64> = points
            .iter()
            .map(|p| MatrixCache::digest(p).wrapping_sub(MatrixCache::verify_digest(p)))
            .collect();
        assert!(
            deltas.len() > 1,
            "digest and verify_digest differ by a constant — not independent"
        );
    }

    #[test]
    fn corrupt_and_truncated_files_are_misses() {
        let cache = temp_cache("corrupt");
        let point = point();
        let result = simulate_workload(&point.workload, &point.machine, &point.options);
        cache.store(&point, &result);
        let file = cache
            .dir()
            .join(format!("{:016x}.wpsim", MatrixCache::digest(&point)));
        // Truncated.
        let full = std::fs::read(&file).expect("stored file exists");
        std::fs::write(&file, &full[..full.len() - 1]).expect("rewrite");
        assert!(cache.load(&point).is_none());
        // Wrong magic.
        let mut bad = full.clone();
        bad[0] = b'X';
        std::fs::write(&file, &bad).expect("rewrite");
        assert!(cache.load(&point).is_none());
        let _ = std::fs::remove_dir_all(cache.dir());
    }
}
