//! A persistent on-disk cache of simulation results.
//!
//! Every [`SimPoint`] determines its [`SimResult`]
//! completely (workload identity, machine configuration, run options), so a
//! result computed once can be reused by every later process. The cache
//! stores one small binary file per point, named by a stable 64-bit FNV-1a
//! digest of the point (plus a format-version salt), under a directory that
//! defaults to `target/wp-matrix-cache` and can be moved with the
//! `WPSDM_MATRIX_CACHE_DIR` environment variable or the binaries'
//! `--matrix-cache-dir` flag.
//!
//! Invalidation is by digest: changing any component of the point — the
//! trace seed or length, a cache parameter, a policy, or the workload
//! (trace workloads hash their *content digest*, not their path) — changes
//! the digest and therefore misses. Bumping [`CACHE_FORMAT_VERSION`]
//! invalidates every stored result at once; that is the knob to turn when a
//! simulator change alters what results mean. Unreadable, truncated, or
//! version-mismatched files are treated as misses, never as errors.
//!
//! Values round-trip exactly: every `f64` is stored via its IEEE-754 bit
//! pattern, so a result served from disk is bit-identical to the freshly
//! simulated one (asserted by `tests/matrix_cache.rs`).

use std::hash::{Hash, Hasher};
use std::io::Write;
use std::path::{Path, PathBuf};

use wp_cache::{DCacheStats, ICacheStats};
use wp_cpu::SimResult;
use wp_energy::ActivityCounts;
use wp_workloads::Fnv1a;

use crate::engine::SimPoint;

/// Bump to invalidate every previously stored result (the digest of every
/// point changes). Bump whenever the simulator's meaning of a result
/// changes — not for pure performance work, which must be bit-identical.
pub const CACHE_FORMAT_VERSION: u32 = 1;

/// Magic prefix of a stored result file.
const MAGIC: &[u8; 4] = b"WPSM";

/// Serialized size of one result: magic + version + digest + 36 numeric
/// fields of 8 bytes each.
const RECORD_BYTES: usize = 4 + 4 + 8 + 36 * 8;

/// The persistent result store the engine consults before simulating.
#[derive(Debug, Clone)]
pub struct MatrixCache {
    dir: PathBuf,
}

impl MatrixCache {
    /// A cache rooted at `dir` (created lazily on first store).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self { dir: dir.into() }
    }

    /// The default cache location: `$WPSDM_MATRIX_CACHE_DIR`, or
    /// `target/wp-matrix-cache` relative to the working directory.
    pub fn default_dir() -> PathBuf {
        std::env::var_os("WPSDM_MATRIX_CACHE_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("target/wp-matrix-cache"))
    }

    /// A cache at [`MatrixCache::default_dir`].
    pub fn at_default_dir() -> Self {
        Self::new(Self::default_dir())
    }

    /// The directory results are stored under.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The stable digest naming `point`'s result file.
    pub fn digest(point: &SimPoint) -> u64 {
        let mut hasher = Fnv1a::new();
        CACHE_FORMAT_VERSION.hash(&mut hasher);
        point.hash(&mut hasher);
        hasher.finish()
    }

    fn path_for(&self, digest: u64) -> PathBuf {
        self.dir.join(format!("{digest:016x}.wpsim"))
    }

    /// Loads the stored result for `point`, if an intact one exists.
    pub fn load(&self, point: &SimPoint) -> Option<SimResult> {
        let digest = Self::digest(point);
        let bytes = std::fs::read(self.path_for(digest)).ok()?;
        decode(&bytes, digest)
    }

    /// Stores `result` for `point`. Best-effort: I/O failures (read-only
    /// filesystem, permissions) silently degrade to an uncached run. The
    /// write goes through a per-process temporary file renamed into place,
    /// so concurrent processes never observe a torn record.
    pub fn store(&self, point: &SimPoint, result: &SimResult) {
        let digest = Self::digest(point);
        if std::fs::create_dir_all(&self.dir).is_err() {
            return;
        }
        let tmp = self
            .dir
            .join(format!("{digest:016x}.wpsim.tmp{}", std::process::id()));
        let write = std::fs::File::create(&tmp)
            .and_then(|mut file| file.write_all(&encode(result, digest)));
        if write.is_ok() {
            let _ = std::fs::rename(&tmp, self.path_for(digest));
        }
        let _ = std::fs::remove_file(&tmp);
    }
}

fn encode(result: &SimResult, digest: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(RECORD_BYTES);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&CACHE_FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&digest.to_le_bytes());
    let mut u = |value: u64| out.extend_from_slice(&value.to_le_bytes());
    u(result.cycles);
    let a = &result.activity;
    for value in [
        a.cycles,
        a.instructions,
        a.int_ops,
        a.fp_ops,
        a.loads,
        a.stores,
        a.branches,
        a.l2_accesses,
    ] {
        u(value);
    }
    let d = &result.dcache;
    for value in [
        d.loads,
        d.load_misses,
        d.stores,
        d.store_misses,
        d.evictions,
        d.direct_mapped_accesses,
        d.parallel_accesses,
        d.way_predicted_accesses,
        d.sequential_accesses,
        d.mispredicted_accesses,
        d.way_predictions,
        d.way_predictions_correct,
        d.seldm_predicted_dm,
        d.seldm_predicted_dm_correct,
        d.conflicting_blocks_flagged,
        d.cache_energy.to_bits(),
        d.prediction_energy.to_bits(),
    ] {
        u(value);
    }
    let i = &result.icache;
    for value in [
        i.fetches,
        i.fetch_misses,
        i.sawp_correct,
        i.btb_correct,
        i.no_prediction,
        i.mispredicted,
        i.cache_energy.to_bits(),
        i.prediction_energy.to_bits(),
    ] {
        u(value);
    }
    u(result.memory_accesses);
    u(result.branch_accuracy.to_bits());
    debug_assert_eq!(out.len(), RECORD_BYTES);
    out
}

/// A checked little-endian field reader over a stored record. Every read
/// is bounds-checked and reports exhaustion as `None`, so a truncated or
/// corrupt record decodes to a cache miss — never a panic — even if the
/// caller's length pre-check is ever weakened.
struct Fields<'a> {
    bytes: &'a [u8],
}

impl Fields<'_> {
    fn u64(&mut self) -> Option<u64> {
        let field = self.bytes.get(..8)?;
        let value = u64::from_le_bytes(field.try_into().ok()?);
        self.bytes = &self.bytes[8..];
        Some(value)
    }
}

fn decode(bytes: &[u8], digest: u64) -> Option<SimResult> {
    if bytes.len() != RECORD_BYTES || bytes.get(0..4)? != MAGIC {
        return None;
    }
    let version = u32::from_le_bytes(bytes.get(4..8)?.try_into().ok()?);
    let stored_digest = u64::from_le_bytes(bytes.get(8..16)?.try_into().ok()?);
    if version != CACHE_FORMAT_VERSION || stored_digest != digest {
        return None;
    }
    let mut fields = Fields {
        bytes: &bytes[16..],
    };
    decode_fields(&mut fields)
}

/// Decodes the numeric fields through the checked reader; any exhausted
/// read aborts the whole decode via `?` (the existing miss path).
fn decode_fields(fields: &mut Fields<'_>) -> Option<SimResult> {
    let mut u = || fields.u64();
    let cycles = u()?;
    let activity = ActivityCounts {
        cycles: u()?,
        instructions: u()?,
        int_ops: u()?,
        fp_ops: u()?,
        loads: u()?,
        stores: u()?,
        branches: u()?,
        l2_accesses: u()?,
    };
    let dcache = DCacheStats {
        loads: u()?,
        load_misses: u()?,
        stores: u()?,
        store_misses: u()?,
        evictions: u()?,
        direct_mapped_accesses: u()?,
        parallel_accesses: u()?,
        way_predicted_accesses: u()?,
        sequential_accesses: u()?,
        mispredicted_accesses: u()?,
        way_predictions: u()?,
        way_predictions_correct: u()?,
        seldm_predicted_dm: u()?,
        seldm_predicted_dm_correct: u()?,
        conflicting_blocks_flagged: u()?,
        cache_energy: f64::from_bits(u()?),
        prediction_energy: f64::from_bits(u()?),
    };
    let icache = ICacheStats {
        fetches: u()?,
        fetch_misses: u()?,
        sawp_correct: u()?,
        btb_correct: u()?,
        no_prediction: u()?,
        mispredicted: u()?,
        cache_energy: f64::from_bits(u()?),
        prediction_energy: f64::from_bits(u()?),
    };
    let memory_accesses = u()?;
    let branch_accuracy = f64::from_bits(u()?);
    Some(SimResult {
        cycles,
        activity,
        dcache,
        icache,
        memory_accesses,
        branch_accuracy,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{simulate_workload, MachineConfig, RunOptions};
    use wp_workloads::Benchmark;

    fn point() -> SimPoint {
        SimPoint::new(
            Benchmark::Li,
            MachineConfig::baseline(),
            RunOptions::quick().with_ops(3_000),
        )
    }

    fn temp_cache(tag: &str) -> MatrixCache {
        let dir = std::env::temp_dir().join(format!(
            "wpsdm-matrix-cache-test-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        MatrixCache::new(dir)
    }

    #[test]
    fn digests_are_stable_and_distinguish_points() {
        let a = point();
        let b = SimPoint::new(
            Benchmark::Li,
            MachineConfig::baseline(),
            RunOptions::quick().with_ops(3_000).with_seed(7),
        );
        assert_eq!(MatrixCache::digest(&a), MatrixCache::digest(&a));
        assert_ne!(MatrixCache::digest(&a), MatrixCache::digest(&b));
    }

    #[test]
    fn results_round_trip_bit_identically() {
        let cache = temp_cache("roundtrip");
        let point = point();
        let result = simulate_workload(&point.workload, &point.machine, &point.options);
        assert!(cache.load(&point).is_none());
        cache.store(&point, &result);
        let loaded = cache.load(&point).expect("stored result must load");
        assert_eq!(loaded, result);
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn truncated_records_decode_to_a_miss_at_every_length() {
        // Even with the whole-record length pre-check bypassed, the field
        // reader must treat a record cut off at *any* byte as a miss — the
        // decode-error path — never panic.
        let point = point();
        let result = simulate_workload(&point.workload, &point.machine, &point.options);
        let digest = MatrixCache::digest(&point);
        let full = encode(&result, digest);
        assert_eq!(decode(&full, digest), Some(result));
        for len in 0..full.len() {
            assert_eq!(decode(&full[..len], digest), None, "truncated to {len}");
        }
        // A record with a valid header but exhausted fields exercises the
        // checked reader directly.
        let mut fields = Fields {
            bytes: &full[16..full.len() - 1],
        };
        assert_eq!(decode_fields(&mut fields), None);
    }

    #[test]
    fn corrupt_and_truncated_files_are_misses() {
        let cache = temp_cache("corrupt");
        let point = point();
        let result = simulate_workload(&point.workload, &point.machine, &point.options);
        cache.store(&point, &result);
        let file = cache
            .dir()
            .join(format!("{:016x}.wpsim", MatrixCache::digest(&point)));
        // Truncated.
        let full = std::fs::read(&file).expect("stored file exists");
        std::fs::write(&file, &full[..full.len() - 1]).expect("rewrite");
        assert!(cache.load(&point).is_none());
        // Wrong magic.
        let mut bad = full.clone();
        bad[0] = b'X';
        std::fs::write(&file, &bad).expect("rewrite");
        assert!(cache.load(&point).is_none());
        let _ = std::fs::remove_dir_all(cache.dir());
    }
}
