//! A persistent, crash-safe on-disk cache of simulation results.
//!
//! Every [`SimPoint`] determines its [`SimResult`]
//! completely (workload identity, machine configuration, run options), so a
//! result computed once can be reused by every later process. The cache
//! stores one small binary file per point, named by a stable 64-bit FNV-1a
//! digest of the point (plus a format-version salt), under a directory that
//! defaults to `target/wp-matrix-cache` and can be moved with the
//! `WPSDM_MATRIX_CACHE_DIR` environment variable or the binaries'
//! `--matrix-cache-dir` flag.
//!
//! Invalidation is by digest: changing any component of the point — the
//! trace seed or length, a cache parameter, a policy, or the workload
//! (trace workloads hash their *content digest*, not their path) — changes
//! the digest and therefore misses. Bumping [`CACHE_FORMAT_VERSION`]
//! invalidates every stored result at once; that is the knob to turn when a
//! simulator change alters what results mean. Unreadable, truncated, or
//! version-mismatched files are treated as misses, never as errors.
//!
//! Values round-trip exactly: every `f64` is stored via its IEEE-754 bit
//! pattern, so a result served from disk is bit-identical to the freshly
//! simulated one (asserted by `tests/matrix_cache.rs`).
//!
//! # Robustness (see `docs/RELIABILITY.md`)
//!
//! All I/O goes through the [`CacheIo`] trait (the real filesystem in
//! production, a deterministic fault injector in the crash harness), and
//! the cache is built to stay *correct* — results bit-identical to an
//! uncached run — under any I/O failure or crash:
//!
//! * **atomic records** — every store writes a uniquely named temporary
//!   file (digest + pid + per-process sequence number, so two threads
//!   storing the same digest never share a path), flushes it, and renames
//!   it into place: a reader observes a record fully or not at all;
//! * **startup recovery** — the first operation sweeps stale `*.tmp*`
//!   debris left by crashed processes and compacts away records from older
//!   [`CACHE_FORMAT_VERSION`] generations or with unrecognizable headers;
//! * **capacity cap** — with a byte cap configured
//!   (`WPSDM_MATRIX_CACHE_CAP` / `--matrix-cache-cap`), stores evict the
//!   oldest-mtime records until the directory fits, guarded by an advisory
//!   lock file with retry/backoff bounded by a configurable timeout
//!   (`WPSDM_CACHE_LOCK_TIMEOUT_MS` / [`MatrixCache::with_lock_timeout`])
//!   and dead-holder detection; an expired bound is a typed
//!   [`EvictLockTimeout`] from [`MatrixCache::evict_to_cap`], counted (and
//!   warned about) rather than silently swallowed on the store path;
//! * **circuit breaker** — after [`DEFAULT_BREAKER_THRESHOLD`] *consecutive*
//!   I/O failures the cache degrades to pass-through (every load misses,
//!   every store is a no-op) and prints a one-line stderr warning, so a
//!   dead disk costs a bounded number of failed syscalls, not one per
//!   point;
//! * **observability** — the [`CacheHealth`] counter struct
//!   ([`MatrixCache::health`]) surfaces on [`crate::SimMatrix`], the
//!   `run_all`/`trace_replay` stderr reports, `run_all --health-json`, and
//!   the `wp-serve` daemon's `health` response.

use std::hash::{Hash, Hasher};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Once};
use std::time::Duration;

use serde::Serialize;

use wp_cache::{DCacheStats, ICacheStats};
use wp_cpu::SimResult;
use wp_energy::ActivityCounts;
use wp_workloads::Fnv1a;

use crate::engine::SimPoint;
use crate::storage::{CacheIo, DirEntry, FsIo};

/// Bump to invalidate every previously stored result (the digest of every
/// point changes). Bump whenever the simulator's meaning of a result
/// changes — not for pure performance work, which must be bit-identical.
/// (2: records additionally store an independent verification digest of
/// the point, so a filename-digest collision can no longer serve one
/// point's result for another. 3: results grew the outcome-class coverage
/// counters — `single_way_load_hits`, `seldm_predicted_sa`,
/// `victim_list_hits`, `dirty_evictions`, `ras_correct`.)
pub const CACHE_FORMAT_VERSION: u32 = 3;

/// Consecutive I/O failures that trip the circuit breaker and degrade the
/// cache to pass-through for the rest of the process ([`MatrixCache`] docs;
/// override per cache with [`MatrixCache::with_breaker_threshold`]).
pub const DEFAULT_BREAKER_THRESHOLD: u32 = 8;

/// Magic prefix of a stored result file.
const MAGIC: &[u8; 4] = b"WPSM";

/// Salt distinguishing the stored *verification* digest from the filename
/// digest: the two hash the same point through the same FNV-1a core but
/// from different initial states, so a 64-bit collision in one is
/// independent of a collision in the other (~2⁻¹²⁸ combined for distinct
/// points, vs. the 2⁻⁶⁴ a single digest gives).
const VERIFY_SALT: u64 = 0x9e37_79b9_7f4a_7c15;

/// Serialized size of one result: magic + version + digest + verification
/// digest + 41 numeric fields of 8 bytes each.
const RECORD_BYTES: usize = 4 + 4 + 8 + 8 + 41 * 8;

/// The advisory lock file guarding eviction (content: the holder's pid).
const EVICT_LOCK: &str = "evict.lock";

/// Default bound on the total backoff spent waiting for the eviction lock,
/// in milliseconds — the sum of the historical 1+2+4+8 ms retry schedule.
/// Override per process with `WPSDM_CACHE_LOCK_TIMEOUT_MS` or per cache
/// with [`MatrixCache::with_lock_timeout`].
pub const DEFAULT_LOCK_TIMEOUT_MS: u64 = 15;

/// The eviction lock stayed contended past the configured timeout
/// ([`MatrixCache::with_lock_timeout`] / `WPSDM_CACHE_LOCK_TIMEOUT_MS`).
///
/// Returned by [`MatrixCache::evict_to_cap`]; the store path counts it in
/// [`MatrixCache::lock_timeouts`] (surfaced through [`CacheHealth`]) and
/// defers eviction to a later store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvictLockTimeout {
    /// The contended lock file.
    pub lock: PathBuf,
    /// Total backoff waited before giving up, in milliseconds.
    pub waited_ms: u64,
}

impl std::fmt::Display for EvictLockTimeout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "eviction lock `{}` still contended after {} ms; raise \
             WPSDM_CACHE_LOCK_TIMEOUT_MS or remove a stale lock file",
            self.lock.display(),
            self.waited_ms
        )
    }
}

impl std::error::Error for EvictLockTimeout {}

/// The cache-health counters, as one machine-readable struct: what
/// `run_all --health-json` writes, the `wp-serve` daemon's `health`
/// response embeds, and [`crate::SimMatrix::cache_health`] carries.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct CacheHealth {
    /// Total I/O errors observed (including injected ones).
    pub io_errors: u64,
    /// Records evicted to honour the capacity cap.
    pub evictions: u64,
    /// Eviction passes abandoned because the advisory lock stayed
    /// contended past the configured timeout.
    pub lock_timeouts: u64,
    /// Stale temporary files swept by startup recovery.
    pub recovered_tmp: u64,
    /// Old-generation or header-corrupt records compacted away.
    pub compacted: u64,
    /// True once the circuit breaker has tripped (pass-through mode).
    pub degraded: bool,
}

/// The persistent result store the engine consults before simulating.
///
/// Cloning is cheap and clones *share* state: the I/O backend, the
/// circuit-breaker, and every counter.
#[derive(Debug, Clone)]
pub struct MatrixCache {
    state: Arc<CacheState>,
}

#[derive(Debug)]
struct CacheState {
    dir: PathBuf,
    io: Arc<dyn CacheIo>,
    cap: Option<u64>,
    breaker_threshold: u32,
    lock_timeout: Duration,
    /// Startup recovery runs at most once per cache instance, lazily on
    /// the first load or store.
    recover_once: Once,
    /// Per-process store sequence: part of every temporary file name, so
    /// two threads storing the *same digest* concurrently can never write
    /// through one path (the pre-hardening race).
    seq: AtomicU64,
    io_errors: AtomicU64,
    consecutive_failures: AtomicU32,
    degraded: AtomicBool,
    evictions: AtomicU64,
    lock_timeouts: AtomicU64,
    recovered_tmp: AtomicU64,
    compacted: AtomicU64,
}

impl MatrixCache {
    /// A cache rooted at `dir` (created lazily on first store) over the
    /// real filesystem, with the capacity cap defaulting to
    /// [`MatrixCache::default_cap`] (the `WPSDM_MATRIX_CACHE_CAP`
    /// environment variable, if set).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self::with_io(dir, Arc::new(FsIo))
    }

    /// A cache rooted at `dir` over an explicit I/O backend — the fault
    /// injection seam ([`crate::storage::FaultyIo`]).
    pub fn with_io(dir: impl Into<PathBuf>, io: Arc<dyn CacheIo>) -> Self {
        Self {
            state: Arc::new(CacheState {
                dir: dir.into(),
                io,
                cap: Self::default_cap(),
                breaker_threshold: DEFAULT_BREAKER_THRESHOLD,
                lock_timeout: Self::default_lock_timeout(),
                recover_once: Once::new(),
                seq: AtomicU64::new(0),
                io_errors: AtomicU64::new(0),
                consecutive_failures: AtomicU32::new(0),
                degraded: AtomicBool::new(false),
                evictions: AtomicU64::new(0),
                lock_timeouts: AtomicU64::new(0),
                recovered_tmp: AtomicU64::new(0),
                compacted: AtomicU64::new(0),
            }),
        }
    }

    /// Rebuilds this cache's configuration over `io` with fresh counters
    /// and breaker state — the shared body of the `with_*` builders.
    fn reconfigured(&self, io: Arc<dyn CacheIo>) -> Self {
        let mut rebuilt = Self::with_io(self.state.dir.clone(), io);
        let inner = Arc::get_mut(&mut rebuilt.state).expect("just constructed, uniquely owned");
        inner.cap = self.state.cap;
        inner.breaker_threshold = self.state.breaker_threshold;
        inner.lock_timeout = self.state.lock_timeout;
        rebuilt
    }

    /// Returns a copy with a different I/O backend (fresh counters and
    /// breaker state; configure before first use).
    pub fn with_io_backend(self, io: Arc<dyn CacheIo>) -> Self {
        self.reconfigured(io)
    }

    /// Returns a copy with the capacity cap set to `cap` bytes (`None`
    /// disables eviction). Fresh counters; configure before first use.
    pub fn with_cap(self, cap: Option<u64>) -> Self {
        let mut rebuilt = self.reconfigured(Arc::clone(&self.state.io));
        Arc::get_mut(&mut rebuilt.state)
            .expect("just constructed, uniquely owned")
            .cap = cap;
        rebuilt
    }

    /// Returns a copy with the circuit breaker tripping after `threshold`
    /// consecutive I/O failures. Fresh counters; configure before first
    /// use.
    pub fn with_breaker_threshold(self, threshold: u32) -> Self {
        let mut rebuilt = self.reconfigured(Arc::clone(&self.state.io));
        Arc::get_mut(&mut rebuilt.state)
            .expect("just constructed, uniquely owned")
            .breaker_threshold = threshold.max(1);
        rebuilt
    }

    /// Returns a copy with the eviction-lock contention bound set to
    /// `timeout` (total backoff before [`EvictLockTimeout`]). Fresh
    /// counters; configure before first use.
    pub fn with_lock_timeout(self, timeout: Duration) -> Self {
        let mut rebuilt = self.reconfigured(Arc::clone(&self.state.io));
        Arc::get_mut(&mut rebuilt.state)
            .expect("just constructed, uniquely owned")
            .lock_timeout = timeout;
        rebuilt
    }

    /// The default cache location: `$WPSDM_MATRIX_CACHE_DIR`, or
    /// `target/wp-matrix-cache` relative to the working directory.
    pub fn default_dir() -> PathBuf {
        std::env::var_os("WPSDM_MATRIX_CACHE_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("target/wp-matrix-cache"))
    }

    /// The default capacity cap: `$WPSDM_MATRIX_CACHE_CAP` in bytes, if
    /// set to a positive integer (anything else means "no cap" — a broken
    /// environment must degrade gracefully, not take the run down).
    pub fn default_cap() -> Option<u64> {
        let raw = std::env::var("WPSDM_MATRIX_CACHE_CAP").ok()?;
        match raw.trim().parse::<u64>() {
            Ok(cap) if cap > 0 => Some(cap),
            _ => None,
        }
    }

    /// The default eviction-lock contention bound:
    /// `$WPSDM_CACHE_LOCK_TIMEOUT_MS` in milliseconds if set to an integer
    /// (zero means "give up on first contention"), else
    /// [`DEFAULT_LOCK_TIMEOUT_MS`]. An unparseable value falls back to the
    /// default — a broken environment must degrade gracefully, not take
    /// the run down.
    pub fn default_lock_timeout() -> Duration {
        let configured = std::env::var("WPSDM_CACHE_LOCK_TIMEOUT_MS")
            .ok()
            .and_then(|raw| raw.trim().parse::<u64>().ok())
            .unwrap_or(DEFAULT_LOCK_TIMEOUT_MS);
        Duration::from_millis(configured)
    }

    /// A cache at [`MatrixCache::default_dir`].
    pub fn at_default_dir() -> Self {
        Self::new(Self::default_dir())
    }

    /// The directory results are stored under.
    pub fn dir(&self) -> &Path {
        &self.state.dir
    }

    /// The configured capacity cap in bytes, if any.
    pub fn cap(&self) -> Option<u64> {
        self.state.cap
    }

    /// Total I/O errors observed (including injected ones).
    pub fn io_errors(&self) -> u64 {
        self.state.io_errors.load(Ordering::Relaxed)
    }

    /// Records evicted to honour the capacity cap.
    pub fn evictions(&self) -> u64 {
        self.state.evictions.load(Ordering::Relaxed)
    }

    /// Eviction passes abandoned because the advisory lock stayed
    /// contended past the configured timeout.
    pub fn lock_timeouts(&self) -> u64 {
        self.state.lock_timeouts.load(Ordering::Relaxed)
    }

    /// The configured eviction-lock contention bound.
    pub fn lock_timeout(&self) -> Duration {
        self.state.lock_timeout
    }

    /// A snapshot of every health counter as one machine-readable struct.
    pub fn health(&self) -> CacheHealth {
        CacheHealth {
            io_errors: self.io_errors(),
            evictions: self.evictions(),
            lock_timeouts: self.lock_timeouts(),
            recovered_tmp: self.recovered_tmp(),
            compacted: self.compacted(),
            degraded: self.degraded(),
        }
    }

    /// Stale temporary files swept by startup recovery.
    pub fn recovered_tmp(&self) -> u64 {
        self.state.recovered_tmp.load(Ordering::Relaxed)
    }

    /// Old-generation or header-corrupt records removed by startup
    /// recovery (compaction).
    pub fn compacted(&self) -> u64 {
        self.state.compacted.load(Ordering::Relaxed)
    }

    /// True once the circuit breaker has tripped: the cache is a
    /// pass-through (every load misses, every store is a no-op) for the
    /// rest of this process.
    pub fn degraded(&self) -> bool {
        self.state.degraded.load(Ordering::Relaxed)
    }

    /// The stable digest naming `point`'s result file.
    pub fn digest(point: &SimPoint) -> u64 {
        let mut hasher = Fnv1a::new();
        CACHE_FORMAT_VERSION.hash(&mut hasher);
        point.hash(&mut hasher);
        hasher.finish()
    }

    /// A second, independently salted digest of `point`, stored *inside*
    /// the record and re-checked on load: the widened key check that keeps
    /// a filename-digest collision between two distinct points from
    /// serving one point's result for the other.
    pub fn verify_digest(point: &SimPoint) -> u64 {
        let mut hasher = Fnv1a::new();
        VERIFY_SALT.hash(&mut hasher);
        CACHE_FORMAT_VERSION.hash(&mut hasher);
        point.hash(&mut hasher);
        hasher.finish()
    }

    fn path_for(&self, digest: u64) -> PathBuf {
        self.state.dir.join(format!("{digest:016x}.wpsim"))
    }

    /// A fresh, process-unique temporary path for storing `digest`: the
    /// pid separates concurrent processes, the sequence number separates
    /// concurrent threads of *this* process storing the same digest.
    fn tmp_path_for(&self, digest: u64) -> PathBuf {
        let seq = self.state.seq.fetch_add(1, Ordering::Relaxed);
        self.state.dir.join(format!(
            "{digest:016x}.wpsim.tmp{}.{seq}",
            std::process::id()
        ))
    }

    /// Notes one failed I/O operation: counts it and advances the circuit
    /// breaker, tripping it (with a one-line stderr warning) at the
    /// configured threshold.
    fn note_failure(&self) {
        self.state.io_errors.fetch_add(1, Ordering::Relaxed);
        let consecutive = self
            .state
            .consecutive_failures
            .fetch_add(1, Ordering::Relaxed)
            .saturating_add(1);
        if consecutive >= self.state.breaker_threshold
            && !self.state.degraded.swap(true, Ordering::Relaxed)
        {
            eprintln!(
                "warning: matrix cache degraded to pass-through after {consecutive} \
                 consecutive I/O errors (dir {}); results stay correct, everything \
                 re-simulates",
                self.state.dir.display()
            );
        }
    }

    /// Notes one successful I/O round: the breaker only counts
    /// *consecutive* failures.
    fn note_success(&self) {
        self.state.consecutive_failures.store(0, Ordering::Relaxed);
    }

    /// Runs startup recovery exactly once per cache instance: sweep stale
    /// `*.tmp*` debris from crashed stores, and compact away records from
    /// older format generations (or with headers no current reader could
    /// accept). Best-effort — every failure is counted and skipped.
    fn ensure_recovered(&self) {
        self.state.recover_once.call_once(|| self.recover());
    }

    fn recover(&self) {
        let entries = match self.state.io.list_dir(&self.state.dir) {
            Ok(entries) => entries,
            // No directory yet: nothing to recover (and not an error).
            Err(e) if e.kind() == io::ErrorKind::NotFound => return,
            Err(_) => {
                self.note_failure();
                return;
            }
        };
        for entry in entries {
            let path = self.state.dir.join(&entry.name);
            if entry.name.contains(".wpsim.tmp") {
                // A temporary file can only be observed here if the store
                // that owned it died mid-flight: live stores hold unique
                // names and remove them before returning.
                match self.state.io.remove_file(&path) {
                    Ok(()) => {
                        self.note_success();
                        self.state.recovered_tmp.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(_) => self.note_failure(),
                }
            } else if entry.name.ends_with(".wpsim") && !self.header_is_current(&path) {
                // An old-generation or header-corrupt record would never
                // serve a hit again; reclaim its space now (compaction).
                match self.state.io.remove_file(&path) {
                    Ok(()) => {
                        self.note_success();
                        self.state.compacted.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(_) => self.note_failure(),
                }
            }
        }
    }

    /// True if the record at `path` has the current magic, version, and
    /// length — i.e. could possibly serve a hit for some point.
    fn header_is_current(&self, path: &Path) -> bool {
        let Ok(bytes) = self.state.io.read(path) else {
            // Unreadable right now: leave it for a later recovery rather
            // than risk deleting a healthy record over a transient error.
            self.note_failure();
            return true;
        };
        self.note_success();
        bytes.len() == RECORD_BYTES
            && bytes.get(0..4).map(|m| m == MAGIC) == Some(true)
            && bytes
                .get(4..8)
                .and_then(|v| v.try_into().ok())
                .map(u32::from_le_bytes)
                == Some(CACHE_FORMAT_VERSION)
    }

    /// Loads the stored result for `point`, if an intact one exists.
    pub fn load(&self, point: &SimPoint) -> Option<SimResult> {
        self.load_at(Self::digest(point), point)
    }

    /// [`MatrixCache::load`] with the filename digest supplied by the
    /// caller. Hidden test seam: forcing two distinct points onto one
    /// digest simulates a 64-bit collision, and the stored verification
    /// digest must still keep their results apart.
    #[doc(hidden)]
    pub fn load_at(&self, digest: u64, point: &SimPoint) -> Option<SimResult> {
        if self.degraded() {
            return None;
        }
        self.ensure_recovered();
        let bytes = match self.state.io.read(&self.path_for(digest)) {
            Ok(bytes) => {
                self.note_success();
                bytes
            }
            // A miss, not an I/O failure: absence is the normal cold case,
            // and a definitive answer from a healthy backend — it resets
            // the breaker window like any other successful round trip
            // (otherwise a long cold sweep would accumulate scattered
            // transient faults into a spurious "consecutive" trip).
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                self.note_success();
                return None;
            }
            Err(_) => {
                self.note_failure();
                return None;
            }
        };
        decode(&bytes, digest, Self::verify_digest(point))
    }

    /// Stores `result` for `point`. Best-effort: I/O failures (read-only
    /// filesystem, ENOSPC, a tripped circuit breaker) silently degrade to
    /// an uncached run. The write goes through a uniquely named temporary
    /// file flushed and renamed into place, so no reader — concurrent
    /// process, concurrent thread, or post-crash successor — ever observes
    /// a torn record.
    pub fn store(&self, point: &SimPoint, result: &SimResult) {
        self.store_at(Self::digest(point), point, result);
    }

    /// [`MatrixCache::store`] with the filename digest supplied by the
    /// caller; see [`MatrixCache::load_at`].
    #[doc(hidden)]
    pub fn store_at(&self, digest: u64, point: &SimPoint, result: &SimResult) {
        if self.degraded() {
            return;
        }
        self.ensure_recovered();
        if self.state.io.create_dir_all(&self.state.dir).is_err() {
            self.note_failure();
            return;
        }
        let tmp = self.tmp_path_for(digest);
        let bytes = encode(result, digest, Self::verify_digest(point));
        if self.state.io.write_file(&tmp, &bytes).is_err() {
            self.note_failure();
            // Clean up any torn prefix; if this fails too (crash, dead
            // disk) startup recovery sweeps the debris next time.
            let _ = self.state.io.remove_file(&tmp);
            return;
        }
        if self.state.io.rename(&tmp, &self.path_for(digest)).is_err() {
            self.note_failure();
            let _ = self.state.io.remove_file(&tmp);
            return;
        }
        self.note_success();
        self.maybe_evict();
    }

    /// Enforces the capacity cap after a successful store: best-effort on
    /// I/O failures, but a lock-contention timeout is *counted* (the
    /// [`MatrixCache::lock_timeouts`] health counter) and warned about —
    /// the work is deferred to a later store, never silently dropped.
    fn maybe_evict(&self) {
        if let Err(timeout) = self.evict_to_cap() {
            self.state.lock_timeouts.fetch_add(1, Ordering::Relaxed);
            eprintln!("warning: {timeout}; eviction deferred to a later store");
        }
    }

    /// Enforces the capacity cap now: while the records under the
    /// directory exceed the cap, evict oldest-mtime first (store time
    /// approximates recency: loads do not touch files), guarded by an
    /// advisory lock so concurrent processes do not shred each other's
    /// working set. Returns the number of records evicted; with no cap
    /// configured (or the directory already within it) this is `Ok(0)`.
    /// Plain I/O failures stay best-effort (counted, breaker-advanced,
    /// `Ok`), matching the rest of the cache.
    ///
    /// # Errors
    ///
    /// Returns [`EvictLockTimeout`] if the advisory lock stays contended
    /// past the configured bound ([`MatrixCache::with_lock_timeout`] /
    /// `WPSDM_CACHE_LOCK_TIMEOUT_MS`).
    pub fn evict_to_cap(&self) -> Result<u64, EvictLockTimeout> {
        let Some(cap) = self.state.cap else {
            return Ok(0);
        };
        // Unlocked pre-check: the common case (under cap) costs one
        // directory listing and no lock traffic.
        let Some(entries) = self.list_records() else {
            return Ok(0);
        };
        if total_record_bytes(&entries) <= cap {
            return Ok(0);
        }
        if !self.acquire_evict_lock()? {
            return Ok(0);
        }
        // Re-list under the lock: another process may have evicted
        // concurrently with our pre-check.
        let mut evicted = 0;
        if let Some(mut entries) = self.list_records() {
            entries
                .sort_by(|a, b| (a.modified, a.name.as_str()).cmp(&(b.modified, b.name.as_str())));
            let mut total = total_record_bytes(&entries);
            for entry in &entries {
                if total <= cap {
                    break;
                }
                match self.state.io.remove_file(&self.state.dir.join(&entry.name)) {
                    Ok(()) => {
                        self.note_success();
                        self.state.evictions.fetch_add(1, Ordering::Relaxed);
                        evicted += 1;
                        total = total.saturating_sub(entry.len);
                    }
                    Err(_) => self.note_failure(),
                }
            }
        }
        let _ = self.state.io.remove_file(&self.state.dir.join(EVICT_LOCK));
        Ok(evicted)
    }

    /// The current `*.wpsim` records, or `None` on a listing failure.
    fn list_records(&self) -> Option<Vec<DirEntry>> {
        match self.state.io.list_dir(&self.state.dir) {
            Ok(entries) => Some(
                entries
                    .into_iter()
                    .filter(|e| e.name.ends_with(".wpsim"))
                    .collect(),
            ),
            Err(_) => {
                self.note_failure();
                None
            }
        }
    }

    /// Tries to take the eviction lock with exponential backoff bounded by
    /// the configured timeout, breaking locks whose holder is provably
    /// dead (the lock file carries the holder's pid). `Ok(false)` means an
    /// I/O failure (counted, best-effort skip); a lock that stays
    /// *contended* past the bound is the typed [`EvictLockTimeout`] — the
    /// caller decides whether to surface or count it, never blocks.
    fn acquire_evict_lock(&self) -> Result<bool, EvictLockTimeout> {
        let lock = self.state.dir.join(EVICT_LOCK);
        let pid_bytes = std::process::id().to_string().into_bytes();
        let timeout = self.state.lock_timeout;
        let mut slept = Duration::ZERO;
        let mut backoff = Duration::from_millis(1);
        loop {
            match self.state.io.create_exclusive(&lock, &pid_bytes) {
                Ok(()) => return Ok(true),
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                    if self.lock_is_stale(&lock) {
                        // The holder died mid-eviction; break its lock and
                        // retry immediately. A failed break is an I/O
                        // problem, not contention — skip best-effort.
                        if self.state.io.remove_file(&lock).is_err() {
                            self.note_failure();
                            return Ok(false);
                        }
                        continue;
                    }
                    if slept >= timeout {
                        return Err(EvictLockTimeout {
                            lock,
                            waited_ms: slept.as_millis() as u64,
                        });
                    }
                    let nap = backoff.min(timeout - slept);
                    std::thread::sleep(nap);
                    slept += nap;
                    backoff = backoff.saturating_mul(2);
                }
                Err(_) => {
                    self.note_failure();
                    return Ok(false);
                }
            }
        }
    }

    /// True if the eviction lock's holder is provably dead. A lock we
    /// cannot read or attribute to a live process is treated as stale
    /// (unparseable content can only be debris); a lock held by *this*
    /// process (another thread mid-eviction) is never stale.
    fn lock_is_stale(&self, lock: &Path) -> bool {
        let Ok(bytes) = self.state.io.read(lock) else {
            // Racing remove by the holder: not stale, just gone.
            return false;
        };
        let Some(pid) = std::str::from_utf8(&bytes)
            .ok()
            .and_then(|text| text.trim().parse::<u32>().ok())
        else {
            return true;
        };
        if pid == std::process::id() {
            return false;
        }
        #[cfg(target_os = "linux")]
        {
            !Path::new("/proc").join(pid.to_string()).exists()
        }
        #[cfg(not(target_os = "linux"))]
        {
            // Without a portable liveness probe, never break a foreign
            // lock: losing eviction beats shredding a live working set.
            false
        }
    }
}

/// Sum of the record lengths in `entries`.
fn total_record_bytes(entries: &[DirEntry]) -> u64 {
    entries.iter().map(|e| e.len).sum()
}

fn encode(result: &SimResult, digest: u64, verify: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(RECORD_BYTES);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&CACHE_FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&digest.to_le_bytes());
    out.extend_from_slice(&verify.to_le_bytes());
    // The value stream is exactly [`SimResult::fields`] — the canonical
    // field enumeration behind `exact_eq` — so the record format and the
    // equality contract can never disagree on what a result *is*.
    // `decode_fields` rebuilds the struct in the same declaration order;
    // the round-trip test in this module pins the pairing.
    for (_, bits) in result.fields() {
        out.extend_from_slice(&bits.to_le_bytes());
    }
    debug_assert_eq!(out.len(), RECORD_BYTES);
    out
}

/// A checked little-endian field reader over a stored record. Every read
/// is bounds-checked and reports exhaustion as `None`, so a truncated or
/// corrupt record decodes to a cache miss — never a panic — even if the
/// caller's length pre-check is ever weakened.
struct Fields<'a> {
    bytes: &'a [u8],
}

impl Fields<'_> {
    fn u64(&mut self) -> Option<u64> {
        let field = self.bytes.get(..8)?;
        let value = u64::from_le_bytes(field.try_into().ok()?);
        self.bytes = &self.bytes[8..];
        Some(value)
    }
}

fn decode(bytes: &[u8], digest: u64, verify: u64) -> Option<SimResult> {
    if bytes.len() != RECORD_BYTES || bytes.get(0..4)? != MAGIC {
        return None;
    }
    let version = u32::from_le_bytes(bytes.get(4..8)?.try_into().ok()?);
    let stored_digest = u64::from_le_bytes(bytes.get(8..16)?.try_into().ok()?);
    let stored_verify = u64::from_le_bytes(bytes.get(16..24)?.try_into().ok()?);
    if version != CACHE_FORMAT_VERSION || stored_digest != digest || stored_verify != verify {
        return None;
    }
    let mut fields = Fields {
        bytes: &bytes[24..],
    };
    decode_fields(&mut fields)
}

/// Decodes the numeric fields through the checked reader; any exhausted
/// read aborts the whole decode via `?` (the existing miss path).
fn decode_fields(fields: &mut Fields<'_>) -> Option<SimResult> {
    let mut u = || fields.u64();
    let cycles = u()?;
    let activity = ActivityCounts {
        cycles: u()?,
        instructions: u()?,
        int_ops: u()?,
        fp_ops: u()?,
        loads: u()?,
        stores: u()?,
        branches: u()?,
        l2_accesses: u()?,
    };
    let dcache = DCacheStats {
        loads: u()?,
        load_misses: u()?,
        stores: u()?,
        store_misses: u()?,
        evictions: u()?,
        direct_mapped_accesses: u()?,
        parallel_accesses: u()?,
        way_predicted_accesses: u()?,
        sequential_accesses: u()?,
        mispredicted_accesses: u()?,
        way_predictions: u()?,
        way_predictions_correct: u()?,
        seldm_predicted_dm: u()?,
        seldm_predicted_dm_correct: u()?,
        conflicting_blocks_flagged: u()?,
        single_way_load_hits: u()?,
        seldm_predicted_sa: u()?,
        victim_list_hits: u()?,
        dirty_evictions: u()?,
        cache_energy: f64::from_bits(u()?),
        prediction_energy: f64::from_bits(u()?),
    };
    let icache = ICacheStats {
        fetches: u()?,
        fetch_misses: u()?,
        sawp_correct: u()?,
        btb_correct: u()?,
        ras_correct: u()?,
        no_prediction: u()?,
        mispredicted: u()?,
        cache_energy: f64::from_bits(u()?),
        prediction_energy: f64::from_bits(u()?),
    };
    let memory_accesses = u()?;
    let branch_accuracy = f64::from_bits(u()?);
    Some(SimResult {
        cycles,
        activity,
        dcache,
        icache,
        memory_accesses,
        branch_accuracy,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{simulate_workload, MachineConfig, RunOptions};
    use crate::storage::{FaultKind, FaultPlan, FaultyIo};
    use wp_workloads::Benchmark;

    fn point() -> SimPoint {
        SimPoint::new(
            Benchmark::Li,
            MachineConfig::baseline(),
            RunOptions::quick().with_ops(3_000),
        )
    }

    fn temp_cache(tag: &str) -> MatrixCache {
        let dir = std::env::temp_dir().join(format!(
            "wpsdm-matrix-cache-test-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        MatrixCache::new(dir)
    }

    #[test]
    fn digests_are_stable_and_distinguish_points() {
        let a = point();
        let b = SimPoint::new(
            Benchmark::Li,
            MachineConfig::baseline(),
            RunOptions::quick().with_ops(3_000).with_seed(7),
        );
        assert_eq!(MatrixCache::digest(&a), MatrixCache::digest(&a));
        assert_ne!(MatrixCache::digest(&a), MatrixCache::digest(&b));
    }

    #[test]
    fn results_round_trip_bit_identically() {
        let cache = temp_cache("roundtrip");
        let point = point();
        let result = simulate_workload(&point.workload, &point.machine, &point.options);
        assert!(cache.load(&point).is_none());
        cache.store(&point, &result);
        let loaded = cache.load(&point).expect("stored result must load");
        assert_eq!(loaded, result);
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn tmp_names_are_unique_within_a_process() {
        // The pre-hardening race: two threads storing the same digest
        // wrote through one `…tmp{pid}` path, so one could rename the
        // other's half-written file into place. Unique per-store sequence
        // numbers make the collision impossible.
        let cache = temp_cache("tmpnames");
        let digest = 0xdead_beef_0000_0001;
        let a = cache.tmp_path_for(digest);
        let b = cache.tmp_path_for(digest);
        assert_ne!(a, b, "same digest, same process: tmp paths must differ");
        let clone = cache.clone();
        let c = clone.tmp_path_for(digest);
        assert_ne!(b, c, "clones share the sequence counter");
    }

    #[test]
    fn concurrent_same_digest_stores_never_tear() {
        // Hammer one digest from many threads; every interleaving must
        // leave an intact, loadable record and no temporary debris.
        let cache = temp_cache("hammer");
        let point = point();
        let result = simulate_workload(&point.workload, &point.machine, &point.options);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..25 {
                        cache.store(&point, &result);
                        if let Some(loaded) = cache.load(&point) {
                            assert_eq!(loaded, result, "no reader may observe a torn record");
                        }
                    }
                });
            }
        });
        assert_eq!(cache.load(&point), Some(result));
        let leftovers: Vec<String> = std::fs::read_dir(cache.dir())
            .expect("cache dir exists")
            .map(|e| e.expect("entry").file_name().to_string_lossy().into_owned())
            .filter(|name| name.contains(".tmp"))
            .collect();
        assert_eq!(
            leftovers,
            Vec::<String>::new(),
            "no tmp debris after stores"
        );
        assert_eq!(cache.io_errors(), 0);
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn truncated_records_decode_to_a_miss_at_every_length() {
        // Even with the whole-record length pre-check bypassed, the field
        // reader must treat a record cut off at *any* byte as a miss — the
        // decode-error path — never panic.
        let point = point();
        let result = simulate_workload(&point.workload, &point.machine, &point.options);
        let digest = MatrixCache::digest(&point);
        let verify = MatrixCache::verify_digest(&point);
        let full = encode(&result, digest, verify);
        assert_eq!(decode(&full, digest, verify), Some(result));
        for len in 0..full.len() {
            assert_eq!(
                decode(&full[..len], digest, verify),
                None,
                "truncated to {len}"
            );
        }
        // A record with a valid header but exhausted fields exercises the
        // checked reader directly.
        let mut fields = Fields {
            bytes: &full[24..full.len() - 1],
        };
        assert_eq!(decode_fields(&mut fields), None);
    }

    #[test]
    fn forced_digest_collisions_do_not_cross_contaminate() {
        // Two distinct points whose *filename* digests are forced equal:
        // the verification digest stored inside the record must keep their
        // results apart — point B reads a miss, never point A's result.
        let cache = temp_cache("collision");
        let a = point();
        let b = SimPoint::new(
            Benchmark::Li,
            MachineConfig::baseline(),
            RunOptions::quick().with_ops(3_000).with_seed(99),
        );
        assert_ne!(a, b);
        assert_ne!(
            MatrixCache::verify_digest(&a),
            MatrixCache::verify_digest(&b),
            "distinct points must have distinct verification digests"
        );
        let result_a = simulate_workload(&a.workload, &a.machine, &a.options);
        let collided = 0xdead_beef_cafe_f00d;
        cache.store_at(collided, &a, &result_a);
        // The rightful owner loads through the forced digest...
        assert_eq!(cache.load_at(collided, &a), Some(result_a));
        // ...the colliding point must not.
        assert_eq!(
            cache.load_at(collided, &b),
            None,
            "a digest collision must decode as a miss for the other point"
        );
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn verify_digest_is_independent_of_the_filename_digest() {
        // The two digests must not be trivially related (e.g. equal, or a
        // constant offset apart) — otherwise a collision in one implies a
        // collision in the other and the widened check buys nothing.
        let points: Vec<SimPoint> = (0..16)
            .map(|i| {
                SimPoint::new(
                    Benchmark::Li,
                    MachineConfig::baseline(),
                    RunOptions::quick().with_ops(1_000 + i),
                )
            })
            .collect();
        let deltas: std::collections::HashSet<u64> = points
            .iter()
            .map(|p| MatrixCache::digest(p).wrapping_sub(MatrixCache::verify_digest(p)))
            .collect();
        assert!(
            deltas.len() > 1,
            "digest and verify_digest differ by a constant — not independent"
        );
    }

    #[test]
    fn corrupt_and_truncated_files_are_misses() {
        let cache = temp_cache("corrupt");
        let point = point();
        let result = simulate_workload(&point.workload, &point.machine, &point.options);
        cache.store(&point, &result);
        let file = cache
            .dir()
            .join(format!("{:016x}.wpsim", MatrixCache::digest(&point)));
        // Truncated.
        let full = std::fs::read(&file).expect("stored file exists");
        std::fs::write(&file, &full[..full.len() - 1]).expect("rewrite");
        assert!(cache.load(&point).is_none());
        // Wrong magic.
        let mut bad = full.clone();
        bad[0] = b'X';
        std::fs::write(&file, &bad).expect("rewrite");
        assert!(cache.load(&point).is_none());
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn startup_recovery_sweeps_tmp_debris_and_compacts_old_generations() {
        let cache = temp_cache("recovery");
        let dir = cache.dir().to_path_buf();
        std::fs::create_dir_all(&dir).expect("mkdir");
        // Debris a crashed process would leave: torn temporaries...
        std::fs::write(dir.join("0123456789abcdef.wpsim.tmp99999.0"), b"torn").expect("tmp");
        std::fs::write(dir.join("fedcba9876543210.wpsim.tmp99998.3"), b"").expect("tmp");
        // ...a record from an older format generation...
        let mut old = Vec::new();
        old.extend_from_slice(MAGIC);
        old.extend_from_slice(&(CACHE_FORMAT_VERSION - 1).to_le_bytes());
        old.resize(RECORD_BYTES, 0);
        std::fs::write(dir.join("00000000000000aa.wpsim"), &old).expect("old record");
        // ...and a header-corrupt one.
        std::fs::write(dir.join("00000000000000bb.wpsim"), b"not a record").expect("bad record");

        // A healthy record must survive recovery untouched.
        let point = point();
        let result = simulate_workload(&point.workload, &point.machine, &point.options);
        let healthy = encode(
            &result,
            MatrixCache::digest(&point),
            MatrixCache::verify_digest(&point),
        );
        std::fs::write(
            dir.join(format!("{:016x}.wpsim", MatrixCache::digest(&point))),
            &healthy,
        )
        .expect("healthy record");

        // First operation triggers recovery.
        assert_eq!(cache.load(&point), Some(result));
        assert_eq!(cache.recovered_tmp(), 2, "both temporaries swept");
        assert_eq!(
            cache.compacted(),
            2,
            "old-generation + corrupt record removed"
        );
        let names: Vec<String> = std::fs::read_dir(&dir)
            .expect("dir")
            .map(|e| e.expect("entry").file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(
            names,
            vec![format!("{:016x}.wpsim", MatrixCache::digest(&point))],
            "only the healthy record survives"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn circuit_breaker_degrades_to_pass_through() {
        let dir = std::env::temp_dir().join(format!(
            "wpsdm-matrix-cache-test-breaker-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let cache =
            MatrixCache::with_io(&dir, Arc::new(FaultyIo::read_only())).with_breaker_threshold(3);
        let point = point();
        let result = simulate_workload(&point.workload, &point.machine, &point.options);
        assert!(!cache.degraded());
        for _ in 0..3 {
            cache.store(&point, &result);
        }
        assert!(
            cache.degraded(),
            "3 consecutive failures must trip the breaker"
        );
        let errors_at_trip = cache.io_errors();
        // Degraded = pass-through: no further I/O, no further errors.
        cache.store(&point, &result);
        assert_eq!(cache.load(&point), None);
        assert_eq!(cache.io_errors(), errors_at_trip);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn one_success_resets_the_breaker_window() {
        let dir = std::env::temp_dir().join(format!(
            "wpsdm-matrix-cache-test-window-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        // Ops: recovery list(0); store A: mkdir(1) write(2) rename(3);
        // then faults on the next two stores' writes — but never three in
        // a row, because each failed store is followed by a working one.
        let plan = FaultPlan::new()
            .fail_nth(5, FaultKind::Enospc)
            .fail_nth(10, FaultKind::Eio);
        let cache = MatrixCache::with_io(&dir, Arc::new(FaultyIo::with_plan(plan)))
            .with_breaker_threshold(2);
        let point = point();
        let result = simulate_workload(&point.workload, &point.machine, &point.options);
        for _ in 0..6 {
            cache.store(&point, &result);
        }
        assert!(
            !cache.degraded(),
            "isolated failures separated by successes must not trip the breaker"
        );
        assert!(cache.io_errors() >= 2);
        assert_eq!(cache.load(&point), Some(result));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn capacity_cap_evicts_oldest_records_first() {
        let cache = temp_cache("evict");
        let dir = cache.dir().to_path_buf();
        let record_bytes = RECORD_BYTES as u64;
        // Room for exactly 3 records.
        let cache = cache.with_cap(Some(3 * record_bytes));
        let points: Vec<SimPoint> = (0..5)
            .map(|i| {
                SimPoint::new(
                    Benchmark::Li,
                    MachineConfig::baseline(),
                    RunOptions::quick().with_ops(2_000 + i),
                )
            })
            .collect();
        for point in &points {
            let result = simulate_workload(&point.workload, &point.machine, &point.options);
            cache.store(point, &result);
            // Distinct mtimes make the LRU order deterministic.
            std::thread::sleep(std::time::Duration::from_millis(15));
        }
        assert_eq!(cache.evictions(), 2, "two oldest records evicted");
        assert!(cache.load(&points[0]).is_none(), "oldest evicted");
        assert!(cache.load(&points[1]).is_none(), "second-oldest evicted");
        for point in &points[2..] {
            assert!(cache.load(point).is_some(), "recent records survive");
        }
        let total: u64 = std::fs::read_dir(&dir)
            .expect("dir")
            .map(|e| e.expect("entry").metadata().expect("meta").len())
            .sum();
        assert!(total <= 3 * record_bytes, "directory fits the cap");
        assert!(!dir.join(EVICT_LOCK).exists(), "lock released");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dead_holder_eviction_locks_are_broken() {
        let cache = temp_cache("deadlock");
        let dir = cache.dir().to_path_buf();
        std::fs::create_dir_all(&dir).expect("mkdir");
        // A lock from a process that no longer exists (pid u32::MAX is
        // far above any real pid_max).
        std::fs::write(dir.join(EVICT_LOCK), u32::MAX.to_string()).expect("stale lock");
        let cache = cache.with_cap(Some(RECORD_BYTES as u64));
        let a = point();
        let b = SimPoint::new(
            Benchmark::Li,
            MachineConfig::baseline(),
            RunOptions::quick().with_ops(3_500),
        );
        for p in [&a, &b] {
            let result = simulate_workload(&p.workload, &p.machine, &p.options);
            cache.store(p, &result);
            std::thread::sleep(std::time::Duration::from_millis(15));
        }
        assert!(
            cache.evictions() >= 1,
            "the dead holder's lock must not block eviction forever"
        );
        assert!(
            !dir.join(EVICT_LOCK).exists(),
            "lock released after breaking"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn held_eviction_locks_are_respected() {
        let cache = temp_cache("heldlock");
        let dir = cache.dir().to_path_buf();
        std::fs::create_dir_all(&dir).expect("mkdir");
        // A lock held by a live process: our own pid stands in for a
        // concurrent evictor.
        std::fs::write(dir.join(EVICT_LOCK), std::process::id().to_string()).expect("lock");
        let cache = cache
            .with_cap(Some(1))
            .with_lock_timeout(Duration::from_millis(3));
        let point = point();
        let result = simulate_workload(&point.workload, &point.machine, &point.options);
        cache.store(&point, &result);
        assert_eq!(cache.evictions(), 0, "a held lock skips eviction");
        assert_eq!(
            cache.lock_timeouts(),
            1,
            "the abandoned pass is counted, not silently swallowed"
        );
        assert_eq!(
            cache.load(&point),
            Some(result),
            "the store itself still lands"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn contended_lock_times_out_with_the_exact_typed_error() {
        let cache = temp_cache("locktimeout");
        let dir = cache.dir().to_path_buf();
        std::fs::create_dir_all(&dir).expect("mkdir");
        // A lock held by a live process (our own pid): never stale, so the
        // acquire loop must exhaust its backoff budget. A 3 ms bound sleeps
        // exactly 1 + 2 ms, making the reported wait deterministic.
        std::fs::write(dir.join(EVICT_LOCK), std::process::id().to_string()).expect("lock");
        let cache = cache
            .with_cap(Some(1))
            .with_lock_timeout(Duration::from_millis(3));
        let point = point();
        let result = simulate_workload(&point.workload, &point.machine, &point.options);
        cache.store(&point, &result);
        let error = cache
            .evict_to_cap()
            .expect_err("a held lock past the bound must be a typed error");
        assert_eq!(error.waited_ms, 3);
        assert_eq!(error.lock, dir.join(EVICT_LOCK));
        assert_eq!(
            error.to_string(),
            format!(
                "eviction lock `{}` still contended after 3 ms; raise \
                 WPSDM_CACHE_LOCK_TIMEOUT_MS or remove a stale lock file",
                dir.join(EVICT_LOCK).display()
            )
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn evict_to_cap_reports_the_evicted_count() {
        let cache = temp_cache("evictnow");
        let record_bytes = RECORD_BYTES as u64;
        // No cap: trivially Ok(0).
        assert_eq!(cache.clone().with_cap(None).evict_to_cap(), Ok(0));
        let cache = cache.with_cap(Some(record_bytes));
        let points: Vec<SimPoint> = (0..3)
            .map(|i| {
                SimPoint::new(
                    Benchmark::Li,
                    MachineConfig::baseline(),
                    RunOptions::quick().with_ops(2_000 + i),
                )
            })
            .collect();
        for point in &points {
            let result = simulate_workload(&point.workload, &point.machine, &point.options);
            cache.store(point, &result);
            std::thread::sleep(std::time::Duration::from_millis(15));
        }
        // Stores already evicted down to the cap; a manual pass finds the
        // directory within budget.
        assert_eq!(cache.evict_to_cap(), Ok(0));
        assert_eq!(cache.evictions(), 2);
        assert_eq!(cache.lock_timeouts(), 0);
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn health_snapshots_every_counter() {
        let cache = temp_cache("health");
        let point = point();
        let result = simulate_workload(&point.workload, &point.machine, &point.options);
        cache.store(&point, &result);
        assert_eq!(
            cache.health(),
            CacheHealth {
                io_errors: 0,
                evictions: 0,
                lock_timeouts: 0,
                recovered_tmp: 0,
                compacted: 0,
                degraded: false,
            }
        );
        let _ = std::fs::remove_dir_all(cache.dir());
    }
}
