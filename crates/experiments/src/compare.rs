//! Shared comparison machinery: run a set of d-cache policies against the
//! parallel-access baseline across all benchmarks and collect the metrics
//! the paper's figures plot.

use serde::{Deserialize, Serialize};
use wp_cache::{DCachePolicy, L1Config};
use wp_workloads::Benchmark;

use crate::engine::{SimEngine, SimMatrix, SimPlan};
use crate::runner::{MachineConfig, RunOptions};

/// The metrics the paper's d-cache figures plot for one (benchmark, policy)
/// pair, relative to the parallel-access baseline of the same cache
/// configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyComparison {
    /// Benchmark name.
    pub benchmark: String,
    /// Policy label.
    pub policy: String,
    /// D-cache energy-delay relative to the baseline (lower is better).
    pub relative_energy_delay: f64,
    /// D-cache energy relative to the baseline.
    pub relative_energy: f64,
    /// Execution-time increase relative to the baseline (fraction).
    pub performance_degradation: f64,
    /// Way-prediction accuracy over loads that consulted a way table.
    pub way_prediction_accuracy: f64,
    /// Fraction of loads correctly handled as direct-mapped by
    /// selective-DM.
    pub seldm_dm_fraction: f64,
    /// Figure 6 access breakdown: (direct-mapped, parallel, way-predicted,
    /// sequential, mispredicted) fractions of loads.
    pub breakdown: [f64; 5],
    /// Overall d-cache miss rate (percent).
    pub miss_rate_percent: f64,
}

/// The simulation points a `policies`-on-`l1d` comparison needs: the
/// parallel baseline plus one machine per policy, on every benchmark.
pub fn dcache_policy_plan(
    policies: &[DCachePolicy],
    l1d: L1Config,
    options: &RunOptions,
) -> SimPlan {
    let baseline_machine = MachineConfig::baseline().with_l1d(l1d);
    let mut plan = SimPlan::new();
    plan.add_all_benchmarks(baseline_machine, *options);
    for &policy in policies {
        plan.add_all_benchmarks(baseline_machine.with_dpolicy(policy), *options);
    }
    plan
}

/// Assembles the per-(benchmark, policy) rows from an executed matrix. The
/// matrix must contain [`dcache_policy_plan`]'s points.
pub fn compare_dcache_policies_in(
    matrix: &SimMatrix,
    policies: &[DCachePolicy],
    l1d: L1Config,
    options: &RunOptions,
) -> Vec<PolicyComparison> {
    let baseline_machine = MachineConfig::baseline().with_l1d(l1d);
    let mut rows = Vec::new();
    for &benchmark in Benchmark::all().iter() {
        let baseline = matrix.require(benchmark, &baseline_machine, options);
        for &policy in policies {
            let machine = baseline_machine.with_dpolicy(policy);
            let result = matrix.require(benchmark, &machine, options);
            let metrics = result.dcache_relative_to(baseline);
            rows.push(PolicyComparison {
                benchmark: benchmark.name().to_string(),
                policy: policy.label().to_string(),
                relative_energy_delay: metrics.relative_energy_delay,
                relative_energy: metrics.relative_energy,
                performance_degradation: result.performance_degradation_vs(baseline),
                way_prediction_accuracy: result.dcache.way_prediction_accuracy(),
                seldm_dm_fraction: result.dcache.seldm_dm_fraction(),
                breakdown: result.dcache.access_breakdown(),
                miss_rate_percent: result.dcache.miss_rate_percent(),
            });
        }
    }
    rows
}

/// Runs `policies` on `l1d` for every benchmark and returns one row per
/// (benchmark, policy), each measured against the parallel baseline with the
/// same cache configuration and latency. Convenience over
/// [`dcache_policy_plan`] + [`compare_dcache_policies_in`] for standalone
/// use; `run_all` shares one engine run across every figure instead.
pub fn compare_dcache_policies(
    policies: &[DCachePolicy],
    l1d: L1Config,
    options: &RunOptions,
) -> Vec<PolicyComparison> {
    let matrix = SimEngine::default().run(&dcache_policy_plan(policies, l1d, options));
    compare_dcache_policies_in(&matrix, policies, l1d, options)
}

/// Averages the per-benchmark rows of each policy (the paper reports
/// unweighted averages over its eleven benchmarks).
pub fn average_by_policy(rows: &[PolicyComparison]) -> Vec<PolicyComparison> {
    let mut policies: Vec<String> = Vec::new();
    for row in rows {
        if !policies.contains(&row.policy) {
            policies.push(row.policy.clone());
        }
    }
    policies
        .into_iter()
        .filter_map(|policy| {
            let group: Vec<&PolicyComparison> =
                rows.iter().filter(|r| r.policy == policy).collect();
            if group.is_empty() {
                return None;
            }
            let n = group.len() as f64;
            let mean =
                |f: &dyn Fn(&PolicyComparison) -> f64| group.iter().map(|r| f(r)).sum::<f64>() / n;
            let mut breakdown = [0.0; 5];
            for (i, slot) in breakdown.iter_mut().enumerate() {
                *slot = group.iter().map(|r| r.breakdown[i]).sum::<f64>() / n;
            }
            Some(PolicyComparison {
                benchmark: "average".to_string(),
                policy,
                relative_energy_delay: mean(&|r| r.relative_energy_delay),
                relative_energy: mean(&|r| r.relative_energy),
                performance_degradation: mean(&|r| r.performance_degradation),
                way_prediction_accuracy: mean(&|r| r.way_prediction_accuracy),
                seldm_dm_fraction: mean(&|r| r.seldm_dm_fraction),
                breakdown,
                miss_rate_percent: mean(&|r| r.miss_rate_percent),
            })
        })
        .collect()
}

/// Convenience: the average row for one policy, if present.
pub fn average_for(
    averages: &[PolicyComparison],
    policy: DCachePolicy,
) -> Option<&PolicyComparison> {
    averages.iter().find(|r| r.policy == policy.label())
}

/// A complete d-cache figure: per-benchmark rows, per-policy averages, and
/// the paper's reference averages for comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DcacheFigure {
    /// Title used when rendering.
    pub title: String,
    /// Per-(benchmark, policy) measurements.
    pub rows: Vec<PolicyComparison>,
    /// Per-policy averages over the eleven benchmarks.
    pub averages: Vec<PolicyComparison>,
    /// Paper reference averages: (policy label, energy-delay savings
    /// percent, performance degradation percent).
    pub paper_reference: Vec<(String, f64, f64)>,
}

impl DcacheFigure {
    /// The simulation points [`DcacheFigure::from_matrix`] will read.
    pub fn plan(policies: &[DCachePolicy], l1d: L1Config, options: &RunOptions) -> SimPlan {
        dcache_policy_plan(policies, l1d, options)
    }

    /// Assembles the figure from an executed matrix containing
    /// [`DcacheFigure::plan`]'s points.
    pub fn from_matrix(
        matrix: &SimMatrix,
        title: &str,
        policies: &[DCachePolicy],
        l1d: L1Config,
        options: &RunOptions,
        paper_reference: &[(&str, f64, f64)],
    ) -> Self {
        let rows = compare_dcache_policies_in(matrix, policies, l1d, options);
        let averages = average_by_policy(&rows);
        Self {
            title: title.to_string(),
            rows,
            averages,
            paper_reference: paper_reference
                .iter()
                .map(|&(label, savings, perf)| (label.to_string(), savings, perf))
                .collect(),
        }
    }

    /// Runs `policies` on `l1d`, against the parallel baseline of the same
    /// configuration, and assembles the figure (standalone convenience:
    /// plans, executes, and renders in one call).
    pub fn build(
        title: &str,
        policies: &[DCachePolicy],
        l1d: L1Config,
        options: &RunOptions,
        paper_reference: &[(&str, f64, f64)],
    ) -> Self {
        let matrix = SimEngine::default().run(&Self::plan(policies, l1d, options));
        Self::from_matrix(&matrix, title, policies, l1d, options, paper_reference)
    }

    /// Renders the per-benchmark relative energy-delay and degradation,
    /// followed by the averages and the paper's reference numbers.
    pub fn to_table(&self) -> String {
        let mut table = crate::report::TextTable::new(vec![
            "benchmark",
            "policy",
            "rel. E*D",
            "perf. degr. %",
            "waypred acc. %",
            "DM fraction %",
        ]);
        for row in self.rows.iter().chain(self.averages.iter()) {
            table.add_row(vec![
                row.benchmark.clone(),
                row.policy.clone(),
                format!("{:.2}", row.relative_energy_delay),
                format!("{:.1}", row.performance_degradation * 100.0),
                format!("{:.0}", row.way_prediction_accuracy * 100.0),
                format!("{:.0}", row.seldm_dm_fraction * 100.0),
            ]);
        }
        let mut out = format!("{}\n{}", self.title, table.render());
        if !self.paper_reference.is_empty() {
            out.push_str("\nPaper reference averages (E*D savings %, perf. degradation %):\n");
            for (label, savings, perf) in &self.paper_reference {
                let measured = self
                    .averages
                    .iter()
                    .find(|r| &r.policy == label)
                    .map(|r| {
                        format!(
                            " | measured: {:.0} %, {:.1} %",
                            (1.0 - r.relative_energy_delay) * 100.0,
                            r.performance_degradation * 100.0
                        )
                    })
                    .unwrap_or_default();
                out.push_str(&format!("  {label}: {savings} %, {perf} %{measured}\n"));
            }
        }
        out
    }

    /// The measured average energy-delay savings (as a fraction) for one
    /// policy, if it was part of the figure.
    pub fn average_savings(&self, policy: DCachePolicy) -> Option<f64> {
        average_for(&self.averages, policy).map(|r| 1.0 - r.relative_energy_delay)
    }

    /// The measured average performance degradation (as a fraction) for one
    /// policy, if it was part of the figure.
    pub fn average_degradation(&self, policy: DCachePolicy) -> Option<f64> {
        average_for(&self.averages, policy).map(|r| r.performance_degradation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(benchmark: &str, policy: &str, ed: f64) -> PolicyComparison {
        PolicyComparison {
            benchmark: benchmark.into(),
            policy: policy.into(),
            relative_energy_delay: ed,
            relative_energy: ed,
            performance_degradation: 0.01,
            way_prediction_accuracy: 0.6,
            seldm_dm_fraction: 0.7,
            breakdown: [0.7, 0.1, 0.1, 0.05, 0.05],
            miss_rate_percent: 3.0,
        }
    }

    #[test]
    fn averages_are_grouped_by_policy() {
        let rows = vec![
            row("gcc", "sequential", 0.30),
            row("go", "sequential", 0.40),
            row("gcc", "seldm+waypred", 0.30),
        ];
        let averages = average_by_policy(&rows);
        assert_eq!(averages.len(), 2);
        let seq = averages
            .iter()
            .find(|r| r.policy == "sequential")
            .expect("sequential average");
        assert!((seq.relative_energy_delay - 0.35).abs() < 1e-12);
        assert_eq!(seq.benchmark, "average");
        assert!(average_for(&averages, DCachePolicy::SelDmWayPredict).is_some());
        assert!(average_for(&averages, DCachePolicy::WayPredictXor).is_none());
    }

    #[test]
    fn empty_input_yields_empty_averages() {
        assert!(average_by_policy(&[]).is_empty());
    }
}
