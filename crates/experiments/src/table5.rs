//! Table 5 — summary of all d-cache design options.
//!
//! The table condenses Figures 4–6 into average energy-delay savings and
//! performance loss per technique, and is the basis of the paper's
//! conclusion that selective-DM plus way-prediction or sequential access
//! dominates the alternatives.

use serde::{Deserialize, Serialize};
use wp_cache::{DCachePolicy, L1Config};

use crate::compare::{average_by_policy, compare_dcache_policies_in, dcache_policy_plan};
use crate::engine::{SimEngine, SimMatrix, SimPlan};
use crate::report::TextTable;
use crate::runner::RunOptions;

/// One row of Table 5.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table5Row {
    /// Technique label.
    pub technique: String,
    /// Measured average energy-delay savings (percent).
    pub energy_delay_savings: f64,
    /// Paper's average energy-delay savings (percent).
    pub paper_energy_delay_savings: f64,
    /// Measured average performance loss (percent).
    pub performance_loss: f64,
    /// Paper's average performance loss (percent).
    pub paper_performance_loss: f64,
    /// The problem the paper notes for this option, if any.
    pub problem: String,
}

/// The regenerated Table 5.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table5Result {
    /// One row per d-cache design option.
    pub rows: Vec<Table5Row>,
}

/// Paper reference data: (policy, savings %, perf loss %, problem).
const PAPER: [(DCachePolicy, f64, f64, &str); 6] = [
    (
        DCachePolicy::Sequential,
        68.0,
        11.0,
        "high perf. degradation",
    ),
    (DCachePolicy::WayPredictPc, 63.0, 2.9, "low e-savings"),
    (DCachePolicy::WayPredictXor, 64.0, 2.3, "timing"),
    (DCachePolicy::SelDmParallel, 59.0, 2.0, "low e-savings"),
    (DCachePolicy::SelDmWayPredict, 69.0, 2.4, ""),
    (DCachePolicy::SelDmSequential, 73.0, 3.4, ""),
];

/// The simulation points Table 5 needs.
pub fn plan(options: &RunOptions) -> SimPlan {
    let policies: Vec<DCachePolicy> = PAPER.iter().map(|&(p, ..)| p).collect();
    dcache_policy_plan(&policies, L1Config::paper_dcache(), options)
}

/// Renders Table 5 from an executed matrix containing [`plan`]'s points.
pub fn from_matrix(matrix: &SimMatrix, options: &RunOptions) -> Table5Result {
    let policies: Vec<DCachePolicy> = PAPER.iter().map(|&(p, ..)| p).collect();
    let rows = compare_dcache_policies_in(matrix, &policies, L1Config::paper_dcache(), options);
    let averages = average_by_policy(&rows);
    let rows = PAPER
        .iter()
        .map(|&(policy, paper_savings, paper_loss, problem)| {
            let avg = averages
                .iter()
                .find(|r| r.policy == policy.label())
                .cloned()
                .unwrap_or_else(|| panic!("average for {policy} must exist"));
            Table5Row {
                technique: policy.label().to_string(),
                energy_delay_savings: (1.0 - avg.relative_energy_delay) * 100.0,
                paper_energy_delay_savings: paper_savings,
                performance_loss: avg.performance_degradation * 100.0,
                paper_performance_loss: paper_loss,
                problem: problem.to_string(),
            }
        })
        .collect();
    Table5Result { rows }
}

/// Regenerates Table 5 standalone (plans, executes, renders).
pub fn run(options: &RunOptions) -> Table5Result {
    from_matrix(&SimEngine::default().run(&plan(options)), options)
}

impl Table5Result {
    /// Renders the table as text.
    pub fn to_table(&self) -> String {
        let mut table = TextTable::new(vec![
            "technique",
            "E*D savings %",
            "paper",
            "perf. loss %",
            "paper",
            "problem",
        ]);
        for row in &self.rows {
            table.add_row(vec![
                row.technique.clone(),
                format!("{:.0}", row.energy_delay_savings),
                format!("{:.0}", row.paper_energy_delay_savings),
                format!("{:.1}", row.performance_loss),
                format!("{:.1}", row.paper_performance_loss),
                row.problem.clone(),
            ]);
        }
        format!("Table 5: d-cache design-option summary\n{}", table.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selective_dm_options_dominate() {
        let result = run(&RunOptions::quick());
        let get = |name: &str| {
            result
                .rows
                .iter()
                .find(|r| r.technique == name)
                .expect("row present")
                .clone()
        };
        let sequential = get("sequential");
        let seldm_wp = get("seldm+waypred");
        let seldm_seq = get("seldm+sequential");
        // The recommended options keep most of sequential access's savings
        // at a fraction of its performance loss.
        assert!(seldm_wp.energy_delay_savings > 0.75 * sequential.energy_delay_savings);
        assert!(seldm_wp.performance_loss < 0.6 * sequential.performance_loss);
        assert!(seldm_seq.energy_delay_savings >= seldm_wp.energy_delay_savings - 2.0);
        assert_eq!(result.rows.len(), 6);
    }
}
