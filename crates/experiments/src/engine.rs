//! The simulation engine: a deduplicated, parallel experiment matrix.
//!
//! The paper's evaluation sweeps a small set of (benchmark, machine) points
//! from many angles — Figures 4–9 and Table 5 all re-measure the same
//! baseline, Figure 7/8 share the selective-DM configuration, Figure 11
//! reuses the baseline yet again. Instead of every figure re-simulating its
//! points from scratch, figure modules *declare* the points they need as a
//! [`SimPlan`]; the [`SimEngine`] dedups identical points across all
//! consumers, executes the unique set in parallel on scoped threads, and
//! memoizes the results in a [`SimMatrix`] keyed by the full
//! (benchmark, machine, options) configuration. Each figure then renders
//! from its slice of the matrix.
//!
//! Simulations are deterministic in their key — the trace seed is part of
//! [`RunOptions`] — so a matrix produced serially and one produced in
//! parallel contain identical results, and a point is never executed twice.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};

use wp_cpu::{SimResult, MAX_LANES};
use wp_workloads::{Benchmark, SharedStream, StreamKey, WorkloadSpec};

use crate::matrix_cache::{CacheHealth, MatrixCache};
use crate::runner::{
    simulate_workload, simulate_workload_cancellable, simulate_workload_shared,
    simulate_workload_shared_lanes, CancelToken, MachineConfig, RunOptions,
};

/// A streaming-run callback: invoked with each completed point and its
/// result as the result lands, from whichever worker thread finished it.
pub type PointObserver<'a> = &'a (dyn Fn(&SimPoint, &SimResult) + Sync);

/// One simulation point: the full configuration that determines a
/// [`SimResult`].
///
/// The workload component is a [`WorkloadSpec`], so a point can be backed by
/// a synthetic benchmark, a stress scenario, or a recorded trace file — for
/// traces the *content identity* (digest, not path) participates in the
/// dedup key, so the same capture referenced twice simulates once.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SimPoint {
    /// The workload simulated.
    pub workload: WorkloadSpec,
    /// The machine configuration simulated.
    pub machine: MachineConfig,
    /// Trace length and seed.
    pub options: RunOptions,
}

impl SimPoint {
    /// Builds a point over one of the paper's synthetic benchmarks.
    pub fn new(benchmark: Benchmark, machine: MachineConfig, options: RunOptions) -> Self {
        Self::with_workload(WorkloadSpec::Benchmark(benchmark), machine, options)
    }

    /// Builds a point over any workload source (benchmark, scenario, or
    /// trace file).
    pub fn with_workload(
        workload: WorkloadSpec,
        machine: MachineConfig,
        options: RunOptions,
    ) -> Self {
        Self {
            workload,
            machine,
            options,
        }
    }

    /// The paper benchmark behind this point, if it is benchmark-backed.
    pub fn benchmark(&self) -> Option<Benchmark> {
        self.workload.benchmark()
    }
}

/// The simulation points one or more consumers need, possibly with
/// duplicates across consumers — the engine executes each unique point once.
///
/// # Example
///
/// ```
/// use wp_experiments::{MachineConfig, RunOptions, SimEngine, SimPlan, SimPoint};
/// use wp_workloads::{Benchmark, Scenario, WorkloadSpec};
///
/// let options = RunOptions::quick().with_ops(2_000);
/// let machine = MachineConfig::baseline();
///
/// let mut plan = SimPlan::new();
/// plan.add(SimPoint::new(Benchmark::Gcc, machine, options));
/// plan.add(SimPoint::new(Benchmark::Gcc, machine, options)); // duplicate
/// plan.add(SimPoint::with_workload(
///     WorkloadSpec::Scenario(Scenario::pointer_chase()),
///     machine,
///     options,
/// ));
/// assert_eq!(plan.len(), 3);
/// assert_eq!(plan.unique_points().len(), 2);
///
/// let matrix = SimEngine::serial().run(&plan);
/// assert_eq!(matrix.executed_points(), 2); // the duplicate was free
/// assert!(matrix.get(Benchmark::Gcc, &machine, &options).is_some());
/// ```
#[derive(Debug, Clone, Default)]
pub struct SimPlan {
    points: Vec<SimPoint>,
}

impl SimPlan {
    /// An empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one point.
    pub fn add(&mut self, point: SimPoint) {
        self.points.push(point);
    }

    /// Adds one machine on every benchmark (the shape almost every figure
    /// uses).
    pub fn add_all_benchmarks(&mut self, machine: MachineConfig, options: RunOptions) {
        for &benchmark in Benchmark::all().iter() {
            self.add(SimPoint::new(benchmark, machine, options));
        }
    }

    /// Merges another consumer's plan into this one.
    pub fn merge(&mut self, other: SimPlan) {
        self.points.extend(other.points);
    }

    /// All requested points, duplicates included.
    pub fn points(&self) -> &[SimPoint] {
        &self.points
    }

    /// Number of requested points, duplicates included.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if no points were requested.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The unique points, in first-seen order.
    pub fn unique_points(&self) -> Vec<SimPoint> {
        let mut seen = std::collections::HashSet::new();
        self.points
            .iter()
            .filter(|p| seen.insert(*p))
            .cloned()
            .collect()
    }
}

/// Memoized simulation results, keyed by the full point configuration.
#[derive(Debug, Default)]
pub struct SimMatrix {
    results: HashMap<SimPoint, SimResult>,
    executed: usize,
    cache_hits: usize,
    gangs: usize,
    streams_materialized: usize,
    ops_generated: u64,
    ops_consumed: u64,
    lane_batches: usize,
    lane_scalar_fallback: usize,
    lane_width_histogram: [usize; MAX_LANES + 1],
    cache_health: CacheHealth,
}

impl SimMatrix {
    /// An empty matrix.
    pub fn new() -> Self {
        Self::default()
    }

    /// The result for a benchmark-backed point, if it has been simulated.
    pub fn get(
        &self,
        benchmark: Benchmark,
        machine: &MachineConfig,
        options: &RunOptions,
    ) -> Option<&SimResult> {
        self.results
            .get(&SimPoint::new(benchmark, *machine, *options))
    }

    /// The result for a point over any workload source, if it has been
    /// simulated.
    pub fn get_workload(
        &self,
        workload: &WorkloadSpec,
        machine: &MachineConfig,
        options: &RunOptions,
    ) -> Option<&SimResult> {
        self.results.get(&SimPoint::with_workload(
            workload.clone(),
            *machine,
            *options,
        ))
    }

    /// The result for a workload-backed point a consumer's plan declared.
    ///
    /// # Panics
    ///
    /// Panics if the point is missing from the matrix, like
    /// [`SimMatrix::require`].
    pub fn require_workload(
        &self,
        workload: &WorkloadSpec,
        machine: &MachineConfig,
        options: &RunOptions,
    ) -> &SimResult {
        self.get_workload(workload, machine, options)
            .unwrap_or_else(|| {
                panic!(
                    "simulation point missing from the matrix (plan/renderer mismatch): \
                     {workload} on {machine:?} with {options:?}"
                )
            })
    }

    /// The result for a point a consumer's plan declared.
    ///
    /// # Panics
    ///
    /// Panics if the point is missing — a figure rendering from the matrix
    /// must have declared the point in its plan, so a miss is a
    /// plan/renderer mismatch, not a runtime condition.
    pub fn require(
        &self,
        benchmark: Benchmark,
        machine: &MachineConfig,
        options: &RunOptions,
    ) -> &SimResult {
        self.get(benchmark, machine, options).unwrap_or_else(|| {
            panic!(
                "simulation point missing from the matrix (plan/renderer mismatch): \
                 {benchmark} on {machine:?} with {options:?}"
            )
        })
    }

    /// True if the point has been simulated.
    pub fn contains(&self, point: &SimPoint) -> bool {
        self.results.contains_key(point)
    }

    /// Number of distinct points in the matrix.
    pub fn len(&self) -> usize {
        self.results.len()
    }

    /// True if nothing has been simulated.
    pub fn is_empty(&self) -> bool {
        self.results.is_empty()
    }

    /// How many simulations the engine actually executed into this matrix —
    /// the dedup/memoization invariant: at most one per unique point, ever.
    /// Points served from the on-disk [`MatrixCache`] do not count.
    pub fn executed_points(&self) -> usize {
        self.executed
    }

    /// How many points were served from the on-disk [`MatrixCache`] instead
    /// of being simulated.
    pub fn cache_hits(&self) -> usize {
        self.cache_hits
    }

    /// How many gangs (groups of executed points sharing one workload
    /// stream) the engine scheduled into this matrix. Zero when gang
    /// scheduling is disabled or nothing simulated.
    pub fn gangs(&self) -> usize {
        self.gangs
    }

    /// How many workload streams were materialized for gang-scheduled
    /// execution — the stream-production counter: with gangs enabled this
    /// equals the number of distinct [`StreamKey`]s simulated, never the
    /// point count.
    pub fn streams_materialized(&self) -> usize {
        self.streams_materialized
    }

    /// Total micro-ops *produced* by workload sources for this matrix. With
    /// gang scheduling each shared stream is produced once; without it,
    /// every point produces its own.
    pub fn ops_generated(&self) -> u64 {
        self.ops_generated
    }

    /// Total micro-ops *consumed* by simulations into this matrix. The
    /// ratio against [`SimMatrix::ops_generated`] is the gang dedup factor.
    pub fn ops_consumed(&self) -> u64 {
        self.ops_consumed
    }

    /// How many config-parallel lane batches (width ≥ 2) the engine ran
    /// into this matrix. Zero when lane kernels are disabled (or gang
    /// scheduling is, which lane batching rides on).
    pub fn lane_batches(&self) -> usize {
        self.lane_batches
    }

    /// How many executed points fell back to the scalar executor while lane
    /// kernels were enabled — points whose `(d-policy, d-geometry)` batch
    /// key matched no other gang member, plus width-1 chunk remainders.
    /// Together with the lane-batched points this partitions the executed
    /// set: `lane_points() + lane_scalar_fallback()` equals the number of
    /// gang-scheduled executed points (asserted by `tests/lanes.rs`).
    pub fn lane_scalar_fallback(&self) -> usize {
        self.lane_scalar_fallback
    }

    /// Lane-batch width histogram: entry `w` counts the batches that ran at
    /// width `w` (entries 0 and 1 are always zero — width-1 groups fall
    /// back to the scalar executor and count in
    /// [`SimMatrix::lane_scalar_fallback`]).
    pub fn lane_width_histogram(&self) -> &[usize; MAX_LANES + 1] {
        &self.lane_width_histogram
    }

    /// How many executed points were simulated inside a lane batch — the
    /// width-weighted sum of [`SimMatrix::lane_width_histogram`].
    pub fn lane_points(&self) -> usize {
        self.lane_width_histogram
            .iter()
            .enumerate()
            .map(|(width, count)| width * count)
            .sum()
    }

    /// The attached [`MatrixCache`]'s health counters as observed after
    /// filling this matrix. All-zero (and not degraded) without a cache.
    pub fn cache_health(&self) -> CacheHealth {
        self.cache_health
    }

    /// I/O errors the attached [`MatrixCache`] observed while filling this
    /// matrix (including injected faults). Zero without a cache.
    pub fn cache_io_errors(&self) -> u64 {
        self.cache_health.io_errors
    }

    /// Records the attached cache evicted to honour its capacity cap.
    pub fn cache_evictions(&self) -> u64 {
        self.cache_health.evictions
    }

    /// Eviction passes the attached cache abandoned because the advisory
    /// lock stayed contended past its timeout.
    pub fn cache_lock_timeouts(&self) -> u64 {
        self.cache_health.lock_timeouts
    }

    /// Stale temporary files the attached cache's startup recovery swept
    /// (debris of stores that crashed mid-flight).
    pub fn cache_recovered_tmp(&self) -> u64 {
        self.cache_health.recovered_tmp
    }

    /// Old-generation or header-corrupt records the attached cache's
    /// startup recovery compacted away.
    pub fn cache_compacted(&self) -> u64 {
        self.cache_health.compacted
    }

    /// True if the attached cache's circuit breaker tripped (cache degraded
    /// to pass-through) at any point while filling this matrix.
    pub fn cache_degraded(&self) -> bool {
        self.cache_health.degraded
    }
}

/// Executes [`SimPlan`]s into [`SimMatrix`]es, in parallel.
///
/// Results are deterministic in the point key, so a serial engine and a
/// parallel one produce identical matrices:
///
/// ```
/// use wp_experiments::{MachineConfig, RunOptions, SimEngine, SimPlan, SimPoint};
/// use wp_workloads::Benchmark;
///
/// let options = RunOptions::quick().with_ops(2_000);
/// let mut plan = SimPlan::new();
/// plan.add(SimPoint::new(Benchmark::Li, MachineConfig::baseline(), options));
///
/// let serial = SimEngine::serial().run(&plan);
/// let parallel = SimEngine::new(4).run(&plan);
/// for point in plan.unique_points() {
///     assert_eq!(
///         serial.require_workload(&point.workload, &point.machine, &point.options),
///         parallel.require_workload(&point.workload, &point.machine, &point.options),
///     );
/// }
/// ```
#[derive(Debug, Clone)]
pub struct SimEngine {
    threads: usize,
    cache: Option<MatrixCache>,
    gang: bool,
    lanes: bool,
    stream_memory_cap: usize,
}

impl SimEngine {
    /// An engine running on `threads` worker threads (clamped to at least
    /// one), with no persistent cache, gang scheduling enabled, and the
    /// default spill cap ([`wp_workloads::stream_memory_cap`]: the
    /// `WPSDM_STREAM_MEMORY_CAP` environment override if set).
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
            cache: None,
            gang: true,
            lanes: true,
            stream_memory_cap: wp_workloads::stream_memory_cap(),
        }
    }

    /// A single-threaded engine (useful as a determinism reference).
    pub fn serial() -> Self {
        Self::new(1)
    }

    /// Attaches a persistent on-disk result cache: points whose results are
    /// already stored are loaded instead of simulated, and freshly
    /// simulated results are stored back. Results served from the cache are
    /// bit-identical to simulating (see [`MatrixCache`]).
    pub fn with_matrix_cache(mut self, cache: MatrixCache) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Detaches any persistent cache (every missing point simulates).
    pub fn without_matrix_cache(mut self) -> Self {
        self.cache = None;
        self
    }

    /// The attached persistent cache, if any.
    pub fn matrix_cache(&self) -> Option<&MatrixCache> {
        self.cache.as_ref()
    }

    /// Enables or disables gang scheduling: grouping the points to simulate
    /// by workload-stream identity ([`StreamKey`]), materializing each
    /// stream once, and broadcasting it to every configuration in the
    /// group. Results are bit-identical either way (asserted by
    /// `tests/gang.rs` and CI); the flag exists for determinism auditing
    /// and benchmarking, not correctness.
    pub fn with_gang(mut self, gang: bool) -> Self {
        self.gang = gang;
        self
    }

    /// Disables gang scheduling: every point generates its own stream.
    pub fn without_gang(self) -> Self {
        self.with_gang(false)
    }

    /// True if gang scheduling is enabled.
    pub fn gang_enabled(&self) -> bool {
        self.gang
    }

    /// Enables or disables config-parallel lane kernels: within each gang,
    /// points sharing a `(d-policy, d-geometry)` batch key are driven
    /// through one stream walk ([`wp_cpu::run_lane_batch`]) instead of one
    /// walk per point; the rest fall back to the scalar executor. Results
    /// are bit-identical either way (asserted by `tests/lanes.rs`, the
    /// conformance harness, and CI). Lane batching rides on gang
    /// scheduling — with gangs disabled the flag has no effect.
    pub fn with_lanes(mut self, lanes: bool) -> Self {
        self.lanes = lanes;
        self
    }

    /// Disables config-parallel lane kernels: every gang member replays
    /// its stream through the scalar executor.
    pub fn without_lanes(self) -> Self {
        self.with_lanes(false)
    }

    /// True if config-parallel lane kernels are enabled.
    pub fn lanes_enabled(&self) -> bool {
        self.lanes
    }

    /// Caps the resident bytes of one materialized gang stream; longer
    /// streams spill to the `WPTR` codec on disk (see
    /// [`SharedStream::materialize_capped`]).
    pub fn with_stream_memory_cap(mut self, cap_bytes: usize) -> Self {
        self.stream_memory_cap = cap_bytes;
        self
    }

    /// The configured per-stream memory cap in bytes.
    pub fn stream_memory_cap(&self) -> usize {
        self.stream_memory_cap
    }

    /// The configured worker-thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs a plan into a fresh matrix.
    pub fn run(&self, plan: &SimPlan) -> SimMatrix {
        let mut matrix = SimMatrix::new();
        self.run_into(&mut matrix, plan);
        matrix
    }

    /// Runs the not-yet-simulated points of `plan` into `matrix`. Points
    /// already present are reused, points stored in the attached
    /// [`MatrixCache`] are loaded from disk, and only the remainder
    /// simulates; repeated calls never re-execute work.
    pub fn run_into(&self, matrix: &mut SimMatrix, plan: &SimPlan) {
        let missing: Vec<SimPoint> = plan
            .unique_points()
            .into_iter()
            .filter(|p| !matrix.contains(p))
            .collect();
        let mut to_simulate = Vec::with_capacity(missing.len());
        for point in missing {
            match self.cache.as_ref().and_then(|cache| cache.load(&point)) {
                Some(result) => {
                    matrix.cache_hits += 1;
                    matrix.results.insert(point, result);
                }
                None => to_simulate.push(point),
            }
        }
        let results: Vec<SimResult> = if self.gang {
            self.run_gangs(matrix, &to_simulate, None, None)
                .into_iter()
                .map(|r| r.expect("uncancelled gang execution completes every point"))
                .collect()
        } else {
            let results = parallel_map(self.threads, &to_simulate, |point| {
                simulate_workload(&point.workload, &point.machine, &point.options)
            });
            // Without gangs every point generates its own stream, so
            // production equals consumption.
            let consumed: u64 = results.iter().map(|r| r.activity.instructions).sum();
            matrix.ops_generated += consumed;
            matrix.ops_consumed += consumed;
            results
        };
        matrix.executed += to_simulate.len();
        for (point, result) in to_simulate.into_iter().zip(results) {
            if let Some(cache) = &self.cache {
                cache.store(&point, &result);
            }
            matrix.results.insert(point, result);
        }
        if let Some(cache) = &self.cache {
            // Cumulative cache health counters: the cache is shared state
            // (clones share counters), so copy rather than accumulate.
            matrix.cache_health = cache.health();
        }
    }

    /// Runs the not-yet-simulated points of `plan` into `matrix` like
    /// [`run_into`](Self::run_into), but *streams*: `observer` fires with
    /// each completed point as its result lands — cache hits immediately,
    /// simulated points from whichever worker thread finishes them — and
    /// the run stops claiming new work once `token` fires. Cancellation
    /// granularity is one gang work unit (or one op block on the non-gang
    /// path); a unit in flight when the token fires completes and is still
    /// observed, stored, and counted. Returns true if every point of the
    /// plan completed.
    ///
    /// Bytes are the batch bytes: a result observed here is bit-identical
    /// to the one [`run`](Self::run) would produce for the same point —
    /// streaming changes delivery order, never values.
    pub fn run_streaming(
        &self,
        matrix: &mut SimMatrix,
        plan: &SimPlan,
        token: &CancelToken,
        observer: PointObserver<'_>,
    ) -> bool {
        let missing: Vec<SimPoint> = plan
            .unique_points()
            .into_iter()
            .filter(|p| !matrix.contains(p))
            .collect();
        let mut to_simulate = Vec::with_capacity(missing.len());
        let mut cancelled = false;
        for point in missing {
            if cancelled || token.is_cancelled() {
                cancelled = true;
                break;
            }
            match self.cache.as_ref().and_then(|cache| cache.load(&point)) {
                Some(result) => {
                    matrix.cache_hits += 1;
                    observer(&point, &result);
                    matrix.results.insert(point, result);
                }
                None => to_simulate.push(point),
            }
        }
        let results: Vec<Option<SimResult>> = if cancelled {
            vec![None; to_simulate.len()]
        } else if self.gang {
            self.run_gangs(matrix, &to_simulate, Some(token), Some(observer))
        } else {
            let results = parallel_map(self.threads, &to_simulate, |point| {
                if token.is_cancelled() {
                    return None;
                }
                let result = simulate_workload_cancellable(
                    &point.workload,
                    &point.machine,
                    &point.options,
                    token,
                )
                .ok()?;
                observer(point, &result);
                Some(result)
            });
            let consumed: u64 = results
                .iter()
                .flatten()
                .map(|r| r.activity.instructions)
                .sum();
            matrix.ops_generated += consumed;
            matrix.ops_consumed += consumed;
            results
        };
        let mut complete = !cancelled;
        for (point, result) in to_simulate.into_iter().zip(results) {
            match result {
                Some(result) => {
                    if let Some(cache) = &self.cache {
                        cache.store(&point, &result);
                    }
                    matrix.executed += 1;
                    matrix.results.insert(point, result);
                }
                None => complete = false,
            }
        }
        if let Some(cache) = &self.cache {
            matrix.cache_health = cache.health();
        }
        complete
    }

    /// Gang-scheduled execution of `points`: group by [`StreamKey`],
    /// materialize each distinct stream exactly once (in parallel), then
    /// broadcast each stream to every machine configuration in its gang.
    /// Returns the results in `points` order; a `None` slot is a point
    /// whose work unit was never claimed because `token` fired (without a
    /// token every slot is `Some`). When `observer` is set, each completed
    /// point is reported from its worker thread as its unit finishes.
    fn run_gangs(
        &self,
        matrix: &mut SimMatrix,
        points: &[SimPoint],
        token: Option<&CancelToken>,
        observer: Option<PointObserver<'_>>,
    ) -> Vec<Option<SimResult>> {
        if points.is_empty() {
            return Vec::new();
        }
        if token.is_some_and(CancelToken::is_cancelled) {
            return vec![None; points.len()];
        }
        // Group by stream identity, first-seen order.
        let mut keys: Vec<StreamKey> = Vec::new();
        let mut key_index: HashMap<StreamKey, usize> = HashMap::new();
        let jobs: Vec<(usize, usize)> = points
            .iter()
            .enumerate()
            .map(|(point_index, point)| {
                let key = StreamKey::new(
                    point.workload.clone(),
                    point.options.ops,
                    point.options.seed,
                );
                let stream_index = match key_index.get(&key) {
                    Some(&index) => index,
                    None => {
                        let index = keys.len();
                        keys.push(key.clone());
                        key_index.insert(key, index);
                        index
                    }
                };
                (point_index, stream_index)
            })
            .collect();

        let cap = self.stream_memory_cap;
        let streams: Vec<SharedStream> = parallel_map(self.threads, &keys, |key| {
            SharedStream::materialize_capped(key, cap)
                .unwrap_or_else(|e| panic!("workload stream {key} failed to materialize: {e}"))
        });

        // Split each gang into work units: lane batches of up to MAX_LANES
        // points sharing a (d-policy, d-geometry) batch key, and scalar
        // fallbacks for the rest. With lanes disabled every point is its
        // own scalar unit. The partition is computed deterministically here
        // (first-seen order) before any parallel execution, so the results
        // are independent of worker scheduling; the lane counters are
        // accumulated per *completed* unit below — identical totals when
        // nothing cancels, and only work actually done when the token
        // fires.
        let units = self.lane_partition(points, &jobs, keys.len());
        let run_unit = |unit: &WorkUnit| -> Vec<(usize, SimResult)> {
            let unit_results: Vec<(usize, SimResult)> = match unit {
                WorkUnit::Scalar(point_index, stream_index) => vec![(
                    *point_index,
                    simulate_workload_shared(
                        &streams[*stream_index],
                        &points[*point_index].machine,
                    ),
                )],
                WorkUnit::Lane(batch, stream_index) => {
                    let machines: Vec<MachineConfig> =
                        batch.iter().map(|&pi| points[pi].machine).collect();
                    simulate_workload_shared_lanes(&streams[*stream_index], &machines)
                        .into_iter()
                        .zip(batch.iter().copied())
                        .map(|(result, point_index)| (point_index, result))
                        .collect()
                }
            };
            if let Some(observer) = observer {
                for (point_index, result) in &unit_results {
                    observer(&points[*point_index], result);
                }
            }
            unit_results
        };
        // An atomic-cursor claim loop (the shape of [`parallel_map`], with
        // a cancellation check before every claim): workers stop claiming
        // units once the token fires, but a claimed unit always completes —
        // cancellation granularity is one work unit.
        let threads = self.threads.max(1).min(units.len().max(1));
        let cursor = AtomicUsize::new(0);
        // One worker's output: (unit index, that unit's (point, result) list).
        type WorkerResults = Vec<(usize, Vec<(usize, SimResult)>)>;
        let per_worker: Vec<WorkerResults> = std::thread::scope(|scope| {
            let workers: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(|| {
                        let mut produced = Vec::new();
                        loop {
                            if token.is_some_and(CancelToken::is_cancelled) {
                                return produced;
                            }
                            let index = cursor.fetch_add(1, Ordering::Relaxed);
                            let Some(unit) = units.get(index) else {
                                return produced;
                            };
                            produced.push((index, run_unit(unit)));
                        }
                    })
                })
                .collect();
            workers
                .into_iter()
                .map(|worker| worker.join().expect("gang worker panicked"))
                .collect()
        });
        let mut slots: Vec<Option<SimResult>> = vec![None; points.len()];
        for (unit_index, unit_results) in per_worker.into_iter().flatten() {
            match &units[unit_index] {
                WorkUnit::Lane(batch, _) => {
                    matrix.lane_batches += 1;
                    matrix.lane_width_histogram[batch.len()] += 1;
                }
                WorkUnit::Scalar(..) if self.lanes => matrix.lane_scalar_fallback += 1,
                WorkUnit::Scalar(..) => {}
            }
            for (point_index, result) in unit_results {
                slots[point_index] = Some(result);
            }
        }

        matrix.gangs += keys.len();
        matrix.streams_materialized += streams.len();
        matrix.ops_generated += streams.iter().map(|s| s.ops() as u64).sum::<u64>();
        matrix.ops_consumed += slots
            .iter()
            .flatten()
            .map(|r| r.activity.instructions)
            .sum::<u64>();
        slots
    }

    /// Partitions gang-scheduled points into [`WorkUnit`]s: within each
    /// gang, points sharing a `(d-policy, d-geometry)` batch key are
    /// chunked into lane batches of up to [`MAX_LANES`]; width-1 groups and
    /// chunk remainders fall back to scalar units. Every point lands in
    /// exactly one unit. With lanes disabled, every point is a scalar unit.
    fn lane_partition(
        &self,
        points: &[SimPoint],
        jobs: &[(usize, usize)],
        stream_count: usize,
    ) -> Vec<WorkUnit> {
        if !self.lanes {
            return jobs
                .iter()
                .map(|&(point_index, stream_index)| WorkUnit::Scalar(point_index, stream_index))
                .collect();
        }
        // Gang members in point order, per stream.
        let mut per_stream: Vec<Vec<usize>> = vec![Vec::new(); stream_count];
        for &(point_index, stream_index) in jobs {
            per_stream[stream_index].push(point_index);
        }
        let mut units = Vec::new();
        for (stream_index, members) in per_stream.iter().enumerate() {
            // Group the gang by lane batch key, first-seen order. Everything
            // outside the key — latencies, table sizes, the whole i-side,
            // the core — is free to vary within a batch.
            let mut groups: Vec<Vec<usize>> = Vec::new();
            let mut group_index: HashMap<LaneBatchKey, usize> = HashMap::new();
            for &point_index in members {
                let machine = &points[point_index].machine;
                let key = LaneBatchKey {
                    dpolicy: machine.dpolicy,
                    size_bytes: machine.l1d.size_bytes,
                    block_bytes: machine.l1d.block_bytes,
                    associativity: machine.l1d.associativity,
                };
                let index = *group_index.entry(key).or_insert_with(|| {
                    groups.push(Vec::new());
                    groups.len() - 1
                });
                groups[index].push(point_index);
            }
            for group in groups {
                for chunk in group.chunks(MAX_LANES) {
                    if chunk.len() >= 2 {
                        units.push(WorkUnit::Lane(chunk.to_vec(), stream_index));
                    } else {
                        units.push(WorkUnit::Scalar(chunk[0], stream_index));
                    }
                }
            }
        }
        units
    }
}

impl Default for SimEngine {
    /// An engine using every available core.
    fn default() -> Self {
        Self::new(available_threads())
    }
}

/// One schedulable unit of gang-scheduled work: either a single point
/// through the scalar executor, or a lane batch of 2..=[`MAX_LANES`] points
/// through one shared stream walk. Both carry the stream index of the gang
/// they belong to.
#[derive(Debug)]
enum WorkUnit {
    /// `(point index, stream index)`.
    Scalar(usize, usize),
    /// `(point indices in batch order, stream index)`.
    Lane(Vec<usize>, usize),
}

/// What gang members must agree on to share a lane batch: the d-cache
/// policy (the kernels are monomorphized per policy) and the d-cache tag
/// geometry (the SoA tag store lays lanes out across one shared set/way
/// grid). See [`wp_cpu::LaneMember`] for what is free to vary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct LaneBatchKey {
    dpolicy: wp_cache::DCachePolicy,
    size_bytes: usize,
    block_bytes: usize,
    associativity: usize,
}

/// The machine's available parallelism (1 if it cannot be determined).
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Applies `f` to every item on `threads` scoped worker threads, returning
/// the outputs in input order. Work distribution is an atomic-cursor queue:
/// each worker claims the next index and pushes `(index, result)` into its
/// own local vector — no per-item lock, no shared result slots — and the
/// per-worker vectors are merged back into input order at the end.
/// Wall-clock scales with the slowest items rather than a static partition.
/// Used by the engine and by experiments with non-`simulate` work (Table
/// 4's trace replays).
pub fn parallel_map<T: Sync, R: Send>(
    threads: usize,
    items: &[T],
    f: impl Fn(&T) -> R + Sync,
) -> Vec<R> {
    let threads = threads.max(1).min(items.len().max(1));
    if threads == 1 {
        return items.iter().map(f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let per_worker: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut produced = Vec::new();
                    loop {
                        let index = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(index) else {
                            return produced;
                        };
                        produced.push((index, f(item)));
                    }
                })
            })
            .collect();
        workers
            .into_iter()
            .map(|worker| worker.join().expect("parallel_map worker panicked"))
            .collect()
    });
    let mut slots: Vec<Option<R>> = std::iter::repeat_with(|| None).take(items.len()).collect();
    for (index, result) in per_worker.into_iter().flatten() {
        slots[index] = Some(result);
    }
    slots
        .into_iter()
        .map(|slot| slot.expect("every index visited exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wp_cache::DCachePolicy;

    fn tiny() -> RunOptions {
        RunOptions::quick().with_ops(4_000)
    }

    #[test]
    fn plans_dedup_identical_points() {
        let options = tiny();
        let baseline = MachineConfig::baseline();
        let mut plan = SimPlan::new();
        plan.add(SimPoint::new(Benchmark::Gcc, baseline, options));
        plan.add(SimPoint::new(Benchmark::Gcc, baseline, options));
        plan.add(SimPoint::new(Benchmark::Li, baseline, options));
        assert_eq!(plan.len(), 3);
        assert_eq!(plan.unique_points().len(), 2);
    }

    #[test]
    fn points_distinguish_every_key_component() {
        let options = tiny();
        let baseline = MachineConfig::baseline();
        let a = SimPoint::new(Benchmark::Gcc, baseline, options);
        assert_ne!(a, SimPoint::new(Benchmark::Li, baseline, options));
        assert_ne!(
            a,
            SimPoint::new(
                Benchmark::Gcc,
                baseline.with_dpolicy(DCachePolicy::Sequential),
                options
            )
        );
        assert_ne!(
            a,
            SimPoint::new(Benchmark::Gcc, baseline, options.with_seed(7))
        );
    }

    #[test]
    fn engine_executes_each_unique_point_exactly_once() {
        let options = tiny();
        let mut plan = SimPlan::new();
        let baseline = MachineConfig::baseline();
        let seldm = baseline.with_dpolicy(DCachePolicy::SelDmWayPredict);
        for _ in 0..3 {
            plan.add(SimPoint::new(Benchmark::Gcc, baseline, options));
            plan.add(SimPoint::new(Benchmark::Gcc, seldm, options));
        }
        let engine = SimEngine::new(2);
        let mut matrix = engine.run(&plan);
        assert_eq!(matrix.executed_points(), 2);
        assert_eq!(matrix.len(), 2);
        // Re-running the same plan is free: everything is memoized.
        engine.run_into(&mut matrix, &plan);
        assert_eq!(matrix.executed_points(), 2);
    }

    #[test]
    fn serial_and_parallel_matrices_agree_exactly() {
        let options = tiny();
        let mut plan = SimPlan::new();
        let baseline = MachineConfig::baseline();
        for benchmark in [Benchmark::Gcc, Benchmark::Li, Benchmark::Swim] {
            plan.add(SimPoint::new(benchmark, baseline, options));
            plan.add(SimPoint::new(
                benchmark,
                baseline.with_dpolicy(DCachePolicy::SelDmWayPredict),
                options,
            ));
        }
        let serial = SimEngine::serial().run(&plan);
        let parallel = SimEngine::new(4).run(&plan);
        assert_eq!(serial.len(), parallel.len());
        for point in plan.unique_points() {
            let a = serial.require_workload(&point.workload, &point.machine, &point.options);
            let b = parallel.require_workload(&point.workload, &point.machine, &point.options);
            assert_eq!(a, b, "results must not depend on the execution schedule");
        }
    }

    #[test]
    fn scenario_points_are_distinct_from_benchmark_points() {
        let options = tiny();
        let baseline = MachineConfig::baseline();
        let mut plan = SimPlan::new();
        plan.add(SimPoint::new(Benchmark::Gcc, baseline, options));
        plan.add(SimPoint::with_workload(
            WorkloadSpec::Scenario(wp_workloads::Scenario::pointer_chase()),
            baseline,
            options,
        ));
        plan.add(SimPoint::with_workload(
            WorkloadSpec::Scenario(wp_workloads::Scenario::pointer_chase()),
            baseline,
            options,
        ));
        assert_eq!(plan.unique_points().len(), 2);
        let matrix = SimEngine::new(2).run(&plan);
        assert_eq!(matrix.executed_points(), 2);
        let scenario = WorkloadSpec::Scenario(wp_workloads::Scenario::pointer_chase());
        assert!(matrix
            .get_workload(&scenario, &baseline, &options)
            .is_some());
    }

    #[test]
    fn parallel_map_preserves_input_order() {
        let items: Vec<usize> = (0..100).collect();
        let doubled = parallel_map(8, &items, |&x| x * 2);
        assert_eq!(doubled, items.iter().map(|&x| x * 2).collect::<Vec<_>>());
        assert_eq!(
            parallel_map(3, &[] as &[usize], |&x| x),
            Vec::<usize>::new()
        );
    }

    #[test]
    fn missing_points_panic_with_context() {
        let matrix = SimMatrix::new();
        let result = std::panic::catch_unwind(|| {
            matrix.require(Benchmark::Gcc, &MachineConfig::baseline(), &tiny())
        });
        assert!(result.is_err());
    }
}
