//! Regenerates the paper's fig9 from the simulator.
//!
//! Usage: `cargo run --release -p wp-experiments --bin fig9
//! [--quick] [--ops N] [--seed N] [--threads N] [--json]`

use wp_experiments::fig9;

fn main() {
    wp_experiments::runner::artefact_main(fig9::plan, fig9::from_matrix, |result| {
        result.to_table()
    });
}
