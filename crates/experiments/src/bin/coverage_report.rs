//! Emits the (policy × config-axis × outcome-class) coverage matrix for
//! the adversarial workload profiles and hard-asserts the designed cells.
//!
//! By default the three built-in tiers (`expected`, `stress`,
//! `adversarial`) and the benchmark reference rows are simulated at the
//! golden options and printed as aligned tables (`--json` for the exact
//! structure committed at `tests/golden/coverage.json`). With
//! `--profile FILE` the matrix of an on-disk profile is reported instead,
//! checked against its tier's designed cells.
//!
//! Exits 1 if any designed cell is unreached or any outcome class is dead
//! across the report set; exits 2 on a bad command line or profile file.
//!
//! Usage: `cargo run --release -p wp-experiments --bin coverage_report --
//! [--quick] [--ops N] [--seed N] [--threads N] [--json] [--profile FILE]
//! [--no-gang] [--no-lanes] [--stream-cap BYTES] [--no-matrix-cache]
//! [--matrix-cache-dir PATH]`

use wp_experiments::conformance::GOLDEN_OPTIONS;
use wp_experiments::coverage::{self, check_designed_cells, check_taxonomy, CoverageArtefact};
use wp_experiments::runner::CliOptions;

fn main() {
    // The shared parser defaults to the full 400 k-op experiment length;
    // coverage runs at the pinned golden options unless the command line
    // says otherwise, so the default invocation reproduces the committed
    // snapshot.
    let explicit_run = std::env::args().any(|a| a == "--ops" || a == "--seed" || a == "--quick");
    let cli = CliOptions::from_env_or_exit();
    let options = if explicit_run {
        cli.run
    } else {
        GOLDEN_OPTIONS
    };
    let engine = cli.engine();

    let (reports, failures) = match cli.profile_or_exit() {
        Some(profile) => {
            let matrix = engine.run(&coverage::profile_plan(&profile, &options));
            let report = coverage::profile_report(&profile, &matrix, &options);
            let failures = check_designed_cells(&report);
            (vec![report], failures)
        }
        None => {
            let artefact: CoverageArtefact = coverage::run_artefact(&engine, &options);
            let mut failures: Vec<String> = artefact
                .tier_reports()
                .iter()
                .flat_map(check_designed_cells)
                .collect();
            failures.extend(check_taxonomy(&artefact.reports));
            (artefact.reports, failures)
        }
    };

    if cli.json {
        println!(
            "{}",
            wp_experiments::report::to_json(&CoverageArtefact {
                reports: reports.clone()
            })
        );
    } else {
        for report in &reports {
            println!("{}", report.to_table());
        }
    }

    if failures.is_empty() {
        eprintln!(
            "coverage_report: OK — every designed cell reached across {} report(s)",
            reports.len()
        );
    } else {
        for failure in &failures {
            eprintln!("coverage_report: FAILED: {failure}");
        }
        std::process::exit(1);
    }
}
