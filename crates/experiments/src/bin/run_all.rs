//! Regenerates every table and figure of the paper in one run and prints
//! them in order.
//!
//! All eleven artefacts declare their simulation points up front
//! ([`wp_experiments::run_all_plan`]); the engine dedups the shared points
//! (every d-cache figure reuses the same baseline, Figures 7/8 share the
//! selective-DM machines, …) and executes each unique point exactly once,
//! in parallel. With `--json` the eleven results are emitted as one JSON
//! document instead of text tables. With `--profile FILE` the coverage
//! matrix of an adversarial workload profile (see `docs/WORKLOADS.md`) is
//! merged into the same deduped sweep and reported after the paper
//! artefacts.
//!
//! Usage: `cargo run --release -p wp-experiments --bin run_all
//! [--quick] [--ops N] [--seed N] [--threads N] [--json] [--profile FILE]
//! [--no-matrix-cache] [--matrix-cache-dir PATH] [--matrix-cache-cap BYTES]
//! [--health-json PATH]`
//!
//! Results are memoized on disk (see `wp_experiments::matrix_cache`), so a
//! second identical invocation executes zero simulations; pass
//! `--no-matrix-cache` to force everything to simulate.

use serde::Serialize;
use wp_experiments::coverage::{self, CoverageReport};
use wp_experiments::runner::CliOptions;
use wp_experiments::{fig10, fig11, fig4, fig5, fig6, fig7, fig8, fig9, table3, table4, table5};

/// Every artefact of the paper's evaluation, in presentation order, plus
/// the optional `--profile` coverage matrix.
#[derive(Serialize)]
struct RunAllResult {
    table3: table3::Table3Result,
    table4: table4::Table4Result,
    fig4: fig4::Fig4Result,
    fig5: fig5::Fig5Result,
    fig6: fig6::Fig6Result,
    table5: table5::Table5Result,
    fig7: fig7::Fig7Result,
    fig8: fig8::Fig8Result,
    fig9: fig9::Fig9Result,
    fig10: fig10::Fig10Result,
    fig11: fig11::Fig11Result,
    coverage: Option<CoverageReport>,
}

fn main() {
    let cli = CliOptions::from_env_or_exit();
    let options = cli.run;
    let engine = cli.engine();
    // Fail fast on a bad profile file, before any simulation runs.
    let profile = cli.profile_or_exit();

    let mut plan = wp_experiments::run_all_plan(&options);
    if let Some(profile) = &profile {
        // One deduped sweep: the profile's coverage points ride the same
        // engine run as the paper artefacts.
        plan.merge(coverage::profile_plan(profile, &options));
    }
    let requested = plan.len();
    let unique = plan.unique_points().len();
    eprintln!(
        "run_all: {requested} requested points -> {unique} unique simulations \
         on {} threads",
        engine.threads()
    );
    let matrix = engine.run(&plan);
    eprintln!(
        "run_all: executed {} simulations, {} served from the matrix cache",
        matrix.executed_points(),
        matrix.cache_hits()
    );
    eprintln!(
        "run_all: {} gangs, {} streams materialized, \
         {} ops generated for {} ops consumed ({:.2}x stream dedup)",
        matrix.gangs(),
        matrix.streams_materialized(),
        matrix.ops_generated(),
        matrix.ops_consumed(),
        matrix.ops_consumed() as f64 / matrix.ops_generated().max(1) as f64,
    );
    eprintln!(
        "run_all: {} lane batches covering {} points (width histogram {:?}), \
         {} scalar fallbacks",
        matrix.lane_batches(),
        matrix.lane_points(),
        &matrix.lane_width_histogram()[2..],
        matrix.lane_scalar_fallback(),
    );
    eprintln!(
        "run_all: cache health: {} io errors, {} evictions, {} lock timeouts, \
         {} tmp recovered, {} compacted, degraded {}",
        matrix.cache_io_errors(),
        matrix.cache_evictions(),
        matrix.cache_lock_timeouts(),
        matrix.cache_recovered_tmp(),
        matrix.cache_compacted(),
        matrix.cache_degraded(),
    );
    if let Some(path) = &cli.health_json {
        // The machine-readable twin of the stderr line above: the same
        // `CacheHealth` struct the wp-serve daemon returns for a `health`
        // request, so dashboards scrape one schema for both entry points.
        let health = wp_experiments::report::to_json(&matrix.cache_health());
        if let Err(error) = std::fs::write(path, format!("{health}\n")) {
            eprintln!(
                "error: cannot write --health-json {}: {error}",
                path.display()
            );
            std::process::exit(1);
        }
    }
    debug_assert_eq!(matrix.executed_points() + matrix.cache_hits(), unique);

    let results = RunAllResult {
        table3: table3::from_matrix(&matrix, &options),
        table4: table4::run_threaded(&options, engine.threads()),
        fig4: fig4::from_matrix(&matrix, &options),
        fig5: fig5::from_matrix(&matrix, &options),
        fig6: fig6::from_matrix(&matrix, &options),
        table5: table5::from_matrix(&matrix, &options),
        fig7: fig7::from_matrix(&matrix, &options),
        fig8: fig8::from_matrix(&matrix, &options),
        fig9: fig9::from_matrix(&matrix, &options),
        fig10: fig10::from_matrix(&matrix, &options),
        fig11: fig11::from_matrix(&matrix, &options),
        coverage: profile
            .as_ref()
            .map(|p| coverage::profile_report(p, &matrix, &options)),
    };

    if cli.json {
        println!("{}", wp_experiments::report::to_json(&results));
        return;
    }
    println!("{}\n", results.table3.to_table());
    println!("{}\n", results.table4.to_table());
    println!("{}\n", results.fig4.to_table());
    println!("{}\n", results.fig5.to_table());
    println!("{}\n", results.fig6.to_table());
    println!("{}\n", results.table5.to_table());
    println!("{}\n", results.fig7.to_table());
    println!("{}\n", results.fig8.to_table());
    println!("{}\n", results.fig9.to_table());
    println!("{}\n", results.fig10.to_table());
    println!("{}\n", results.fig11.to_table());
    if let Some(coverage) = &results.coverage {
        println!("{}\n", coverage.to_table());
    }
}
