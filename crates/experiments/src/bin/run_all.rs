//! Regenerates every table and figure of the paper in one run and prints
//! them in order.
//!
//! Usage: `cargo run --release -p wp-experiments --bin run_all [--ops N] [--quick]`

fn main() {
    let (options, _) = wp_experiments::runner::options_from_args(std::env::args().skip(1));
    println!("{}\n", wp_experiments::table3::run(&options).to_table());
    println!("{}\n", wp_experiments::table4::run(&options).to_table());
    println!("{}\n", wp_experiments::fig4::run(&options).to_table());
    println!("{}\n", wp_experiments::fig5::run(&options).to_table());
    println!("{}\n", wp_experiments::fig6::run(&options).to_table());
    println!("{}\n", wp_experiments::table5::run(&options).to_table());
    println!("{}\n", wp_experiments::fig7::run(&options).to_table());
    println!("{}\n", wp_experiments::fig8::run(&options).to_table());
    println!("{}\n", wp_experiments::fig9::run(&options).to_table());
    println!("{}\n", wp_experiments::fig10::run(&options).to_table());
    println!("{}\n", wp_experiments::fig11::run(&options).to_table());
}
