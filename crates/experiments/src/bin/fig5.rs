//! Regenerates the paper's fig5 from the simulator.
//!
//! Usage: `cargo run --release -p wp-experiments --bin fig5
//! [--quick] [--ops N] [--seed N] [--threads N] [--json]`

use wp_experiments::fig5;

fn main() {
    wp_experiments::runner::artefact_main(fig5::plan, fig5::from_matrix, |result| {
        result.to_table()
    });
}
