//! Regenerates the paper's table3 from the simulator.
//!
//! Usage: `cargo run --release -p wp-experiments --bin table3
//! [--quick] [--ops N] [--seed N] [--threads N] [--json]`

use wp_experiments::table3;

fn main() {
    wp_experiments::runner::artefact_main(table3::plan, table3::from_matrix, |result| {
        result.to_table()
    });
}
