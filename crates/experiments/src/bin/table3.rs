//! Regenerates the paper's table3 from the simulator.
//!
//! Usage: `cargo run --release -p wp-experiments --bin table3 [--ops N] [--seed N] [--quick] [--json]`

fn main() {
    let (options, json) = wp_experiments::runner::options_from_args(std::env::args().skip(1));
    let result = wp_experiments::table3::run(&options);
    if json {
        println!("{}", wp_experiments::report::to_json(&result));
    } else {
        println!("{}", result.to_table());
    }
}
