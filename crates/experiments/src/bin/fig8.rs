//! Regenerates the paper's fig8 from the simulator.
//!
//! Usage: `cargo run --release -p wp-experiments --bin fig8
//! [--quick] [--ops N] [--seed N] [--threads N] [--json]`

use wp_experiments::fig8;

fn main() {
    wp_experiments::runner::artefact_main(fig8::plan, fig8::from_matrix, |result| {
        result.to_table()
    });
}
