//! Regenerates the paper's fig6 from the simulator.
//!
//! Usage: `cargo run --release -p wp-experiments --bin fig6
//! [--quick] [--ops N] [--seed N] [--threads N] [--json]`

use wp_experiments::fig6;

fn main() {
    wp_experiments::runner::artefact_main(fig6::plan, fig6::from_matrix, |result| {
        result.to_table()
    });
}
