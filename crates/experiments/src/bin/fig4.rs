//! Regenerates the paper's fig4 from the simulator.
//!
//! Usage: `cargo run --release -p wp-experiments --bin fig4
//! [--quick] [--ops N] [--seed N] [--threads N] [--json]`

use wp_experiments::fig4;

fn main() {
    wp_experiments::runner::artefact_main(fig4::plan, fig4::from_matrix, |result| {
        result.to_table()
    });
}
