//! Regenerates the paper's fig10 from the simulator.
//!
//! Usage: `cargo run --release -p wp-experiments --bin fig10
//! [--quick] [--ops N] [--seed N] [--threads N] [--json]`

use wp_experiments::fig10;

fn main() {
    wp_experiments::runner::artefact_main(fig10::plan, fig10::from_matrix, |result| {
        result.to_table()
    });
}
