//! Captures a built-in workload's reference stream to a trace file.
//!
//! Any generated workload — one of the paper's eleven benchmarks or a
//! stress scenario (`pointer_chase`, `strided_stream`, `phase_mix`,
//! `way_alias_thrash`, `phase_flip`, `conflict_chase`) — is run through
//! its generator once and every micro-op is recorded in the `WPTR` binary
//! format (or, with `--text`, the human-readable twin). The resulting
//! file replays bit-identically through `trace_replay` or a
//! [`wp_workloads::TraceReplay`].
//!
//! With `--profile FILE` (mutually exclusive with `--workload`) every
//! scenario of an adversarial workload profile (see `docs/WORKLOADS.md`)
//! is captured in one run; `--out` then names a directory receiving one
//! `<scenario>.wptr` file per scenario.
//!
//! Usage: `cargo run --release -p wp-experiments --bin trace_capture --
//! (--workload NAME | --profile FILE) --out PATH
//! [--quick] [--ops N] [--seed N] [--text]`

use std::io::BufWriter;
use std::path::{Path, PathBuf};

use wp_experiments::runner::RunOptions;
use wp_workloads::{capture_to_file, ProfileSpec, TextTraceWriter, WorkloadSpec};

const USAGE: &str = "usage: trace_capture (--workload NAME | --profile FILE) --out PATH \
                     [--quick] [--ops N] [--seed N] [--text]";

/// What to capture: one named workload to one file, or every scenario of
/// a profile into a directory.
enum Source {
    Workload(WorkloadSpec),
    Profile(ProfileSpec),
}

struct Cli {
    source: Source,
    out: PathBuf,
    run: RunOptions,
    text: bool,
}

fn parse_args(mut args: impl Iterator<Item = String>) -> Result<Cli, String> {
    let mut workload: Option<WorkloadSpec> = None;
    let mut profile: Option<PathBuf> = None;
    let mut out: Option<PathBuf> = None;
    let mut run = RunOptions::default();
    let mut quick = false;
    let mut ops: Option<usize> = None;
    let mut seed: Option<u64> = None;
    let mut text = false;

    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workload" => {
                let name = args.next().ok_or("flag `--workload` requires a value")?;
                workload = Some(WorkloadSpec::parse(&name).ok_or_else(|| {
                    format!(
                        "unknown workload `{name}` (expected one of: {})",
                        WorkloadSpec::generated_names().join(", ")
                    )
                })?);
            }
            "--profile" => {
                profile = Some(PathBuf::from(
                    args.next().ok_or("flag `--profile` requires a value")?,
                ));
            }
            "--out" => {
                out = Some(PathBuf::from(
                    args.next().ok_or("flag `--out` requires a value")?,
                ))
            }
            "--quick" => quick = true,
            "--ops" => {
                let value = args.next().ok_or("flag `--ops` requires a value")?;
                ops = Some(
                    value
                        .parse()
                        .map_err(|_| format!("invalid --ops `{value}`"))?,
                );
            }
            "--seed" => {
                let value = args.next().ok_or("flag `--seed` requires a value")?;
                seed = Some(
                    value
                        .parse()
                        .map_err(|_| format!("invalid --seed `{value}`"))?,
                );
            }
            "--text" => text = true,
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if quick {
        run = RunOptions::quick();
    }
    if let Some(ops) = ops {
        run.ops = ops;
    }
    if let Some(seed) = seed {
        run.seed = seed;
    }
    let source = match (workload, profile) {
        (Some(_), Some(_)) => {
            return Err("flags `--workload` and `--profile` are mutually exclusive".into())
        }
        (Some(workload), None) => Source::Workload(workload),
        (None, Some(path)) => Source::Profile(ProfileSpec::load(&path).map_err(|e| e.to_string())?),
        (None, None) => return Err("missing required flag `--workload` (or `--profile`)".into()),
    };
    Ok(Cli {
        source,
        out: out.ok_or("missing required flag `--out`")?,
        run,
        text,
    })
}

/// Captures one workload's stream to `out`, printing the summary line.
/// Returns false if the capture failed (after printing the error).
fn capture_one(workload: &WorkloadSpec, out: &Path, run: &RunOptions, text: bool) -> bool {
    let label = format!("{} ops={} seed={}", workload.label(), run.ops, run.seed);
    let stream = workload
        .stream(run.ops, run.seed)
        .expect("generated workloads always open");

    let result = if text {
        std::fs::File::create(out)
            .map_err(Into::into)
            .and_then(|file| {
                let mut writer = TextTraceWriter::new(BufWriter::new(file), &label)?;
                for op in stream {
                    writer.write_op(&op)?;
                }
                let records = writer.records();
                writer.finish()?;
                Ok(records)
            })
    } else {
        capture_to_file(stream, out, &label)
    };

    match result {
        Ok(records) => {
            let bytes = std::fs::metadata(out).map(|m| m.len()).unwrap_or(0);
            println!(
                "captured {records} ops of `{label}` to {} ({bytes} bytes, {:.2} bytes/op)",
                out.display(),
                bytes as f64 / records.max(1) as f64,
            );
            true
        }
        Err(error) => {
            eprintln!("error: capture failed: {error}");
            false
        }
    }
}

fn main() {
    let cli = match parse_args(std::env::args().skip(1)) {
        Ok(cli) => cli,
        Err(error) => {
            eprintln!("error: {error}");
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    };

    let ok = match &cli.source {
        Source::Workload(workload) => capture_one(workload, &cli.out, &cli.run, cli.text),
        Source::Profile(profile) => {
            if let Err(error) = std::fs::create_dir_all(&cli.out) {
                eprintln!(
                    "error: cannot create output directory {}: {error}",
                    cli.out.display()
                );
                std::process::exit(1);
            }
            let extension = if cli.text { "txt" } else { "wptr" };
            // A profile may list one scenario family more than once (with
            // different parameters); suffix repeats so no capture is
            // silently overwritten.
            let mut seen: Vec<&str> = Vec::new();
            let mut all_ok = true;
            for (scenario, workload) in profile.scenarios.iter().zip(profile.workloads()) {
                let repeats = seen.iter().filter(|n| **n == scenario.name()).count();
                seen.push(scenario.name());
                let file = if repeats == 0 {
                    format!("{}.{extension}", scenario.name())
                } else {
                    format!("{}-{}.{extension}", scenario.name(), repeats + 1)
                };
                all_ok &= capture_one(&workload, &cli.out.join(file), &cli.run, cli.text);
            }
            println!(
                "captured profile `{}` (tier {}, {} scenarios) into {}",
                profile.name,
                profile.tier.name(),
                profile.scenarios.len(),
                cli.out.display()
            );
            all_ok
        }
    };
    if !ok {
        std::process::exit(1);
    }
}
