//! Captures a built-in workload's reference stream to a trace file.
//!
//! Any generated workload — one of the paper's eleven benchmarks or a
//! stress scenario (`pointer_chase`, `strided_stream`, `phase_mix`) — is
//! run through its generator once and every micro-op is recorded in the
//! `WPTR` binary format (or, with `--text`, the human-readable twin). The
//! resulting file replays bit-identically through `trace_replay` or a
//! [`wp_workloads::TraceReplay`].
//!
//! Usage: `cargo run --release -p wp-experiments --bin trace_capture --
//! --workload NAME --out PATH [--quick] [--ops N] [--seed N] [--text]`

use std::io::BufWriter;
use std::path::PathBuf;

use wp_experiments::runner::RunOptions;
use wp_workloads::{capture_to_file, TextTraceWriter, WorkloadSpec};

const USAGE: &str = "usage: trace_capture --workload NAME --out PATH \
                     [--quick] [--ops N] [--seed N] [--text]";

struct Cli {
    workload: WorkloadSpec,
    out: PathBuf,
    run: RunOptions,
    text: bool,
}

fn parse_args(mut args: impl Iterator<Item = String>) -> Result<Cli, String> {
    let mut workload: Option<WorkloadSpec> = None;
    let mut out: Option<PathBuf> = None;
    let mut run = RunOptions::default();
    let mut quick = false;
    let mut ops: Option<usize> = None;
    let mut seed: Option<u64> = None;
    let mut text = false;

    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workload" => {
                let name = args.next().ok_or("flag `--workload` requires a value")?;
                workload = Some(WorkloadSpec::parse(&name).ok_or_else(|| {
                    format!(
                        "unknown workload `{name}` (expected one of: {})",
                        WorkloadSpec::generated_names().join(", ")
                    )
                })?);
            }
            "--out" => {
                out = Some(PathBuf::from(
                    args.next().ok_or("flag `--out` requires a value")?,
                ))
            }
            "--quick" => quick = true,
            "--ops" => {
                let value = args.next().ok_or("flag `--ops` requires a value")?;
                ops = Some(
                    value
                        .parse()
                        .map_err(|_| format!("invalid --ops `{value}`"))?,
                );
            }
            "--seed" => {
                let value = args.next().ok_or("flag `--seed` requires a value")?;
                seed = Some(
                    value
                        .parse()
                        .map_err(|_| format!("invalid --seed `{value}`"))?,
                );
            }
            "--text" => text = true,
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if quick {
        run = RunOptions::quick();
    }
    if let Some(ops) = ops {
        run.ops = ops;
    }
    if let Some(seed) = seed {
        run.seed = seed;
    }
    Ok(Cli {
        workload: workload.ok_or("missing required flag `--workload`")?,
        out: out.ok_or("missing required flag `--out`")?,
        run,
        text,
    })
}

fn main() {
    let cli = match parse_args(std::env::args().skip(1)) {
        Ok(cli) => cli,
        Err(error) => {
            eprintln!("error: {error}");
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    };

    let label = format!(
        "{} ops={} seed={}",
        cli.workload.label(),
        cli.run.ops,
        cli.run.seed
    );
    let stream = cli
        .workload
        .stream(cli.run.ops, cli.run.seed)
        .expect("generated workloads always open");

    let result = if cli.text {
        std::fs::File::create(&cli.out)
            .map_err(Into::into)
            .and_then(|file| {
                let mut writer = TextTraceWriter::new(BufWriter::new(file), &label)?;
                for op in stream {
                    writer.write_op(&op)?;
                }
                let records = writer.records();
                writer.finish()?;
                Ok(records)
            })
    } else {
        capture_to_file(stream, &cli.out, &label)
    };

    match result {
        Ok(records) => {
            let bytes = std::fs::metadata(&cli.out).map(|m| m.len()).unwrap_or(0);
            println!(
                "captured {records} ops of `{label}` to {} ({bytes} bytes, {:.2} bytes/op)",
                cli.out.display(),
                bytes as f64 / records.max(1) as f64,
            );
        }
        Err(error) => {
            eprintln!("error: capture failed: {error}");
            std::process::exit(1);
        }
    }
}
