//! Regenerates the paper's fig7 from the simulator.
//!
//! Usage: `cargo run --release -p wp-experiments --bin fig7
//! [--quick] [--ops N] [--seed N] [--threads N] [--json]`

use wp_experiments::fig7;

fn main() {
    wp_experiments::runner::artefact_main(fig7::plan, fig7::from_matrix, |result| {
        result.to_table()
    });
}
