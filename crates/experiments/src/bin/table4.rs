//! Regenerates the paper's table4 from the simulator.
//!
//! Usage: `cargo run --release -p wp-experiments --bin table4
//! [--quick] [--ops N] [--seed N] [--threads N] [--json]`

use wp_experiments::runner::CliOptions;

fn main() {
    let cli = CliOptions::from_env_or_exit();
    let result = wp_experiments::table4::run_threaded(&cli.run, cli.engine().threads());
    if cli.json {
        println!("{}", wp_experiments::report::to_json(&result));
    } else {
        println!("{}", result.to_table());
    }
}
