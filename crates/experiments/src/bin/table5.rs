//! Regenerates the paper's table5 from the simulator.
//!
//! Usage: `cargo run --release -p wp-experiments --bin table5
//! [--quick] [--ops N] [--seed N] [--threads N] [--json]`

use wp_experiments::table5;

fn main() {
    wp_experiments::runner::artefact_main(table5::plan, table5::from_matrix, |result| {
        result.to_table()
    });
}
