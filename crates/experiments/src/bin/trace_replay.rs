//! Replays a recorded trace file through the simulator under a set of
//! d-cache policies.
//!
//! The trace streams off disk through the same engine path as the synthetic
//! workloads — the trace's content digest (not its path) is the dedup key,
//! so overlapping plans over the same capture simulate once. Because every
//! policy sees the *identical* reference stream, the comparison isolates
//! the predictor policies from workload generation noise.
//!
//! Usage: `cargo run --release -p wp-experiments --bin trace_replay --
//! --trace PATH [--ops N] [--threads N] [--json] [--no-matrix-cache]
//! [--matrix-cache-dir PATH]`
//!
//! Replays participate in the persistent matrix cache keyed by the trace's
//! content digest; `--no-matrix-cache` forces every policy to re-simulate
//! (deterministic-run auditing, CI).

use std::path::PathBuf;

use serde::Serialize;
use wp_cache::DCachePolicy;
use wp_experiments::engine::{SimPlan, SimPoint};
use wp_experiments::report::{ratio, TextTable};
use wp_experiments::runner::{CliOptions, MachineConfig, RunOptions};
use wp_workloads::WorkloadSpec;

const USAGE: &str = "usage: trace_replay --trace PATH [--ops N] [--threads N] [--json] \
                     [--no-gang] [--no-lanes] [--no-matrix-cache] [--matrix-cache-dir PATH] \
                     [--matrix-cache-cap BYTES]";

/// The policies replayed against the recorded stream (the baseline first).
const POLICIES: [DCachePolicy; 4] = [
    DCachePolicy::Parallel,
    DCachePolicy::Sequential,
    DCachePolicy::WayPredictPc,
    DCachePolicy::SelDmWayPredict,
];

struct Cli {
    trace: PathBuf,
    ops: Option<usize>,
    threads: Option<usize>,
    json: bool,
    no_gang: bool,
    no_lanes: bool,
    no_matrix_cache: bool,
    matrix_cache_dir: Option<PathBuf>,
    matrix_cache_cap: Option<u64>,
}

fn parse_args(mut args: impl Iterator<Item = String>) -> Result<Cli, String> {
    let mut trace: Option<PathBuf> = None;
    let mut ops: Option<usize> = None;
    let mut threads: Option<usize> = None;
    let mut json = false;
    let mut no_gang = false;
    let mut no_lanes = false;
    let mut no_matrix_cache = false;
    let mut matrix_cache_dir: Option<PathBuf> = None;
    let mut matrix_cache_cap: Option<u64> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--no-gang" => no_gang = true,
            "--no-lanes" => no_lanes = true,
            "--no-matrix-cache" => no_matrix_cache = true,
            "--matrix-cache-dir" => {
                matrix_cache_dir = Some(PathBuf::from(
                    args.next()
                        .ok_or("flag `--matrix-cache-dir` requires a value")?,
                ))
            }
            "--matrix-cache-cap" => {
                let value = args
                    .next()
                    .ok_or("flag `--matrix-cache-cap` requires a value")?;
                let parsed: u64 = value
                    .parse()
                    .map_err(|_| format!("invalid --matrix-cache-cap `{value}`"))?;
                if parsed == 0 {
                    return Err("invalid --matrix-cache-cap `0`".to_string());
                }
                matrix_cache_cap = Some(parsed);
            }
            "--trace" => {
                trace = Some(PathBuf::from(
                    args.next().ok_or("flag `--trace` requires a value")?,
                ))
            }
            "--ops" => {
                let value = args.next().ok_or("flag `--ops` requires a value")?;
                ops = Some(
                    value
                        .parse()
                        .map_err(|_| format!("invalid --ops `{value}`"))?,
                );
            }
            "--threads" => {
                let value = args.next().ok_or("flag `--threads` requires a value")?;
                let parsed: usize = value
                    .parse()
                    .map_err(|_| format!("invalid --threads `{value}`"))?;
                if parsed == 0 {
                    return Err("invalid --threads `0`".to_string());
                }
                threads = Some(parsed);
            }
            "--json" => json = true,
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(Cli {
        trace: trace.ok_or("missing required flag `--trace`")?,
        ops,
        threads,
        json,
        no_gang,
        no_lanes,
        no_matrix_cache,
        matrix_cache_dir,
        matrix_cache_cap,
    })
}

/// One policy's results over the replayed stream.
#[derive(Debug, Serialize)]
struct ReplayRow {
    policy: String,
    cycles: u64,
    ipc: f64,
    miss_rate_percent: f64,
    way_prediction_accuracy: f64,
    relative_energy: f64,
    relative_energy_delay: f64,
}

/// The whole replay report.
#[derive(Debug, Serialize)]
struct ReplayResult {
    trace: String,
    source: String,
    records: u64,
    replayed_ops: usize,
    rows: Vec<ReplayRow>,
}

fn main() {
    let cli = match parse_args(std::env::args().skip(1)) {
        Ok(cli) => cli,
        Err(error) => {
            eprintln!("error: {error}");
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    };

    let workload = match WorkloadSpec::from_trace_file(&cli.trace) {
        Ok(workload) => workload,
        Err(error) => {
            eprintln!("error: cannot open trace {}: {error}", cli.trace.display());
            std::process::exit(1);
        }
    };
    let (records, source) = match &workload {
        WorkloadSpec::Trace(handle) => (handle.records(), handle.source().to_string()),
        _ => unreachable!("from_trace_file returns a trace workload"),
    };
    // The stream truncates at the recording's end, so never report more
    // ops than the trace holds.
    let replayed_ops = cli.ops.unwrap_or(usize::MAX).min(records as usize);
    // The seed is irrelevant for replay but part of the dedup key; pin it.
    let options = RunOptions::default().with_ops(replayed_ops).with_seed(0);

    let mut plan = SimPlan::new();
    for policy in POLICIES {
        plan.add(SimPoint::with_workload(
            workload.clone(),
            MachineConfig::baseline().with_dpolicy(policy),
            options,
        ));
    }
    // Reuse the shared engine/cache assembly from the common CLI options,
    // so replay and the artefact binaries can never diverge on cache
    // behaviour.
    let engine = CliOptions {
        run: options,
        json: cli.json,
        threads: cli.threads,
        no_gang: cli.no_gang,
        no_lanes: cli.no_lanes,
        no_matrix_cache: cli.no_matrix_cache,
        matrix_cache_dir: cli.matrix_cache_dir.clone(),
        matrix_cache_cap: cli.matrix_cache_cap,
        stream_cap: None,
        profile: None,
        health_json: None,
    }
    .engine();
    let matrix = engine.run(&plan);
    eprintln!(
        "trace_replay: {} gangs, {} streams materialized, \
         {} ops generated for {} ops consumed ({:.2}x stream dedup); \
         {} lane batches covering {} points, {} scalar fallbacks",
        matrix.gangs(),
        matrix.streams_materialized(),
        matrix.ops_generated(),
        matrix.ops_consumed(),
        matrix.ops_consumed() as f64 / matrix.ops_generated().max(1) as f64,
        matrix.lane_batches(),
        matrix.lane_points(),
        matrix.lane_scalar_fallback(),
    );
    eprintln!(
        "trace_replay: cache health: {} io errors, {} evictions, {} lock timeouts, \
         {} tmp recovered, {} compacted, degraded {}",
        matrix.cache_io_errors(),
        matrix.cache_evictions(),
        matrix.cache_lock_timeouts(),
        matrix.cache_recovered_tmp(),
        matrix.cache_compacted(),
        matrix.cache_degraded(),
    );

    let baseline_machine = MachineConfig::baseline().with_dpolicy(POLICIES[0]);
    let baseline = matrix.require_workload(&workload, &baseline_machine, &options);
    let rows = POLICIES
        .iter()
        .map(|&policy| {
            let machine = MachineConfig::baseline().with_dpolicy(policy);
            let result = matrix.require_workload(&workload, &machine, &options);
            let metrics = result.dcache_relative_to(baseline);
            ReplayRow {
                policy: policy.label().to_string(),
                cycles: result.cycles,
                ipc: result.activity.ipc(),
                miss_rate_percent: result.dcache.miss_rate_percent(),
                way_prediction_accuracy: result.dcache.way_prediction_accuracy(),
                relative_energy: metrics.relative_energy,
                relative_energy_delay: metrics.relative_energy_delay,
            }
        })
        .collect();

    let report = ReplayResult {
        trace: cli.trace.display().to_string(),
        source,
        records,
        replayed_ops,
        rows,
    };

    if cli.json {
        println!("{}", wp_experiments::report::to_json(&report));
        return;
    }
    println!(
        "trace {} (`{}`, {} records, replaying {} ops)",
        report.trace, report.source, report.records, report.replayed_ops
    );
    let mut table = TextTable::new(vec![
        "policy",
        "cycles",
        "IPC",
        "miss%",
        "waypred acc",
        "rel E",
        "rel ED",
    ]);
    for row in &report.rows {
        table.add_row(vec![
            row.policy.clone(),
            row.cycles.to_string(),
            format!("{:.3}", row.ipc),
            format!("{:.2}", row.miss_rate_percent),
            format!("{:.3}", row.way_prediction_accuracy),
            ratio(row.relative_energy),
            ratio(row.relative_energy_delay),
        ]);
    }
    println!("{}", table.render());
}
