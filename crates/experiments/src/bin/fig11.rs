//! Regenerates the paper's fig11 from the simulator.
//!
//! Usage: `cargo run --release -p wp-experiments --bin fig11
//! [--quick] [--ops N] [--seed N] [--threads N] [--json]`

use wp_experiments::fig11;

fn main() {
    wp_experiments::runner::artefact_main(fig11::plan, fig11::from_matrix, |result| {
        result.to_table()
    });
}
