//! Differential conformance driver: proves the optimized simulator and the
//! `wp-oracle` reference produce bit-identical [`wp_cpu::SimResult`]s, and
//! that the committed golden artefact snapshots have not drifted.
//!
//! Four sections, each reporting its mismatch count:
//!
//! 1. **sweep** — every unique point of the `run_all` union plan (all 253
//!    at the default options), optimized engine vs. oracle;
//! 2. **trace** — a workload captured to a `WPTR` trace file and replayed
//!    through both backends under several policies;
//! 3. **random** — `--random N` seeded random (configuration, workload)
//!    pairs drawn by [`wp_experiments::conformance::random_points`];
//! 4. **profile** — with `--profile FILE`, the coverage-harness plan of an
//!    adversarial workload profile (its scenarios × config axes × all
//!    d-cache policies), optimized engine vs. oracle;
//! 5. **golden** — `tests/golden/*.json` compared byte-for-byte against a
//!    fresh render at the pinned golden options (`--bless` regenerates the
//!    files instead of checking them).
//!
//! With `--faulty-cache SEED` an extra fault-schedule section runs the
//! optimized engine over a matrix cache whose every I/O operation may fail
//! or tear (seeded, deterministic; see `docs/RELIABILITY.md`), cold then
//! warm, against the oracle — proving no cache fault can corrupt a result.
//!
//! Exits non-zero on any mismatch or drift. See `docs/VALIDATION.md`.
//!
//! Usage: `cargo run --release -p wp-experiments --bin conformance --
//! [--quick] [--ops N] [--seed N] [--threads N] [--no-gang] [--no-lanes]
//! [--stream-cap BYTES] [--random N] [--bless] [--golden-dir PATH]
//! [--skip-sweep] [--profile FILE] [--faulty-cache SEED]`

use std::path::PathBuf;

use wp_cache::DCachePolicy;
use wp_experiments::conformance::{
    self, check_plan_keeping_cache, check_plan_with, random_points, GoldenDrift, GOLDEN_OPTIONS,
};
use wp_experiments::engine::{available_threads, SimEngine, SimPlan, SimPoint};
use wp_experiments::runner::{options_from_args, CliError, MachineConfig, RunOptions};
use wp_experiments::storage::FaultyIo;
use wp_experiments::MatrixCache;
use wp_workloads::WorkloadSpec;

const USAGE: &str = "usage: conformance [--quick] [--ops N] [--seed N] [--threads N] \
                     [--no-gang] [--no-lanes] [--stream-cap BYTES] [--random N] \
                     [--bless] [--golden-dir PATH] [--skip-sweep] [--profile FILE] \
                     [--faulty-cache SEED]";

struct Cli {
    run: RunOptions,
    /// The optimized-side engine (threads, gang setting, stream cap); the
    /// oracle side mirrors its thread count and cap.
    engine: SimEngine,
    threads: usize,
    random: usize,
    bless: bool,
    golden_dir: PathBuf,
    skip_sweep: bool,
    profile: Option<wp_workloads::ProfileSpec>,
    /// With `--faulty-cache SEED`: run the fault-schedule conformance
    /// section — the optimized engine over a matrix cache whose every I/O
    /// operation may fail or tear (seeded, deterministic), twice (cold
    /// store pass, warm load pass), against the oracle.
    faulty_cache: Option<u64>,
}

fn parse_args(args: impl Iterator<Item = String>) -> Result<Cli, String> {
    // Split off the conformance-specific flags, then hand the rest to the
    // shared experiment-options parser so the common flags (and their
    // error messages) can never diverge from the other binaries.
    let mut random = 200usize;
    let mut bless = false;
    let mut skip_sweep = false;
    let mut golden_dir: Option<PathBuf> = None;
    let mut faulty_cache: Option<u64> = None;
    let mut shared = Vec::new();
    let mut args = args;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--random" => {
                let value = args
                    .next()
                    .ok_or_else(|| CliError::MissingValue("--random").to_string())?;
                random = value
                    .parse()
                    .map_err(|_| CliError::InvalidValue("--random", value).to_string())?;
            }
            "--bless" => bless = true,
            "--skip-sweep" => skip_sweep = true,
            "--golden-dir" => {
                golden_dir =
                    Some(PathBuf::from(args.next().ok_or_else(|| {
                        CliError::MissingValue("--golden-dir").to_string()
                    })?));
            }
            "--faulty-cache" => {
                let value = args
                    .next()
                    .ok_or_else(|| CliError::MissingValue("--faulty-cache").to_string())?;
                faulty_cache =
                    Some(value.parse().map_err(|_| {
                        CliError::InvalidValue("--faulty-cache", value).to_string()
                    })?);
            }
            // Shared flags conformance cannot honour must be rejected, not
            // silently ignored — a user asking for `--json` output or a
            // matrix-cache-backed run would otherwise get false assurance.
            "--json" | "--no-matrix-cache" | "--matrix-cache-dir" | "--matrix-cache-cap"
            | "--health-json" => {
                return Err(format!("flag `{arg}` is not supported by conformance"));
            }
            _ => shared.push(arg),
        }
    }
    let options = options_from_args(shared.into_iter()).map_err(|e| e.to_string())?;
    let profile = options.load_profile().map_err(|e| e.to_string())?;
    let threads = options.threads.unwrap_or_else(available_threads);
    let mut engine = SimEngine::new(threads);
    if options.no_gang {
        engine = engine.without_gang();
    }
    if options.no_lanes {
        engine = engine.without_lanes();
    }
    if let Some(cap) = options.stream_cap {
        engine = engine.with_stream_memory_cap(cap);
    }
    Ok(Cli {
        run: options.run,
        engine,
        threads,
        random,
        bless,
        golden_dir: golden_dir.unwrap_or_else(conformance::default_golden_dir),
        skip_sweep,
        profile,
        faulty_cache,
    })
}

/// Runs one section's reports, printing any mismatches; returns the
/// mismatch count.
fn tally(section: &str, reports: &[conformance::PointReport]) -> usize {
    let mismatches: Vec<_> = reports.iter().filter(|r| !r.matches()).collect();
    println!(
        "conformance[{section}]: {} points, {} mismatches",
        reports.len(),
        mismatches.len()
    );
    for report in &mismatches {
        println!(
            "  MISMATCH {} on {:?} (ops {}, seed {}): fields {:?}",
            report.point.workload,
            report.point.machine.dpolicy,
            report.point.options.ops,
            report.point.options.seed,
            report.diff
        );
    }
    mismatches.len()
}

fn main() {
    let cli = match parse_args(std::env::args().skip(1)) {
        Ok(cli) => cli,
        Err(error) => {
            eprintln!("error: {error}");
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    };
    let mut failures = 0usize;

    // ---- 1. the full run_all sweep ----
    if cli.skip_sweep {
        println!("conformance[sweep]: skipped (--skip-sweep)");
    } else {
        let plan = wp_experiments::run_all_plan(&cli.run);
        let unique = plan.unique_points().len();
        eprintln!(
            "conformance: sweeping {unique} unique run_all points on {} threads \
             (ops {}, seed {})",
            cli.threads, cli.run.ops, cli.run.seed
        );
        failures += tally("sweep", &check_plan_with(&cli.engine, &plan));
    }

    // ---- 2. trace capture → replay through both backends ----
    let trace_dir = std::env::temp_dir().join(format!("wpsdm-conformance-{}", std::process::id()));
    let _ = std::fs::create_dir_all(&trace_dir);
    let trace_path = trace_dir.join("conformance.wptr");
    let capture_spec = WorkloadSpec::parse("gcc").expect("gcc is a paper benchmark");
    let trace_spec = capture_spec
        .stream(cli.run.ops.min(20_000), cli.run.seed)
        .map_err(|e| e.to_string())
        .and_then(|stream| {
            wp_workloads::capture_to_file(stream, &trace_path, "conformance capture")
                .map_err(|e| e.to_string())
        })
        .and_then(|_| WorkloadSpec::from_trace_file(&trace_path).map_err(|e| e.to_string()));
    match trace_spec {
        Ok(spec) => {
            let mut plan = SimPlan::new();
            for dpolicy in [
                DCachePolicy::Parallel,
                DCachePolicy::SelDmWayPredict,
                DCachePolicy::Sequential,
            ] {
                plan.add(SimPoint::with_workload(
                    spec.clone(),
                    MachineConfig::baseline().with_dpolicy(dpolicy),
                    RunOptions {
                        ops: cli.run.ops.min(20_000),
                        seed: 0,
                    },
                ));
            }
            failures += tally("trace", &check_plan_with(&cli.engine, &plan));
        }
        Err(error) => {
            println!("conformance[trace]: FAILED to capture/open trace: {error}");
            failures += 1;
        }
    }
    let _ = std::fs::remove_dir_all(&trace_dir);

    // ---- 3. the seeded random matrix ----
    if cli.random > 0 {
        eprintln!(
            "conformance: checking {} random (config, workload) pairs from seed {}",
            cli.random, cli.run.seed
        );
        let points = random_points(cli.random, cli.run.seed, &[]);
        let mut plan = SimPlan::new();
        for point in points {
            plan.add(point);
        }
        failures += tally("random", &check_plan_with(&cli.engine, &plan));
    }

    // ---- 3b. fault-schedule conformance: optimized over a faulty cache ----
    if let Some(seed) = cli.faulty_cache {
        let cache_dir =
            std::env::temp_dir().join(format!("wpsdm-faulty-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&cache_dir);
        eprintln!(
            "conformance: fault-schedule pass over {} (fault seed {seed}, 10% per-op), \
             cold then warm",
            cache_dir.display()
        );
        let cache =
            MatrixCache::with_io(&cache_dir, std::sync::Arc::new(FaultyIo::seeded(seed, 100)));
        let faulty_engine = cli.engine.clone().with_matrix_cache(cache.clone());
        let plan = wp_experiments::run_all_plan(&cli.run);
        // Cold pass: everything simulates, stores race injected faults.
        failures += tally(
            "faulty-cache-cold",
            &check_plan_keeping_cache(&faulty_engine, &plan),
        );
        // Warm pass: loads are served from whatever survived the fault
        // schedule — hits must be bit-identical, torn records must miss.
        failures += tally(
            "faulty-cache-warm",
            &check_plan_keeping_cache(&faulty_engine, &plan),
        );
        eprintln!(
            "conformance: faulty cache observed {} io errors, degraded {}",
            cache.io_errors(),
            cache.degraded()
        );
        let _ = std::fs::remove_dir_all(&cache_dir);
    }

    // ---- 4. adversarial profile (the coverage-harness plan) ----
    if let Some(profile) = &cli.profile {
        eprintln!(
            "conformance: checking profile `{}` (tier {}) over the coverage plan \
             (ops {}, seed {})",
            profile.name,
            profile.tier.name(),
            cli.run.ops,
            cli.run.seed
        );
        let plan = wp_experiments::coverage::profile_plan(profile, &cli.run);
        failures += tally("profile", &check_plan_with(&cli.engine, &plan));
    }

    // ---- 5. golden artefact snapshots ----
    if cli.bless {
        match conformance::bless_goldens(&cli.golden_dir, cli.threads) {
            Ok(()) => println!(
                "conformance[golden]: blessed {} artefacts into {} (ops {}, seed {})",
                conformance::GOLDEN_ARTEFACTS.len(),
                cli.golden_dir.display(),
                GOLDEN_OPTIONS.ops,
                GOLDEN_OPTIONS.seed
            ),
            Err(error) => {
                println!("conformance[golden]: FAILED to bless: {error}");
                failures += 1;
            }
        }
    } else {
        let drift = conformance::check_goldens(&cli.golden_dir, cli.threads);
        println!(
            "conformance[golden]: {} artefacts, {} drifting",
            conformance::GOLDEN_ARTEFACTS.len(),
            drift.len()
        );
        for entry in &drift {
            match entry {
                GoldenDrift::Missing(name) => {
                    println!("  MISSING golden {name}.json (run `conformance --bless`)")
                }
                GoldenDrift::Differs(name) => println!(
                    "  DRIFT {name}.json differs from the fresh render \
                     (intentional? re-run `conformance --bless` and commit)"
                ),
            }
        }
        failures += drift.len();
    }

    if failures == 0 {
        println!("conformance: OK — oracle and optimized stacks agree bit for bit");
    } else {
        println!("conformance: {failures} failures");
        std::process::exit(1);
    }
}
