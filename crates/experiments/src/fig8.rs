//! Figure 8 — effect of associativity (2-, 4-, 8-way) on selective-DM plus
//! way-prediction.
//!
//! The energy a parallel read wastes grows with the number of ways, so the
//! opportunity grows with associativity: the paper measures 38 %, 69 % and
//! 82 % energy-delay savings for 2-, 4- and 8-way 16 KB caches, each against
//! a parallel baseline of the same associativity.

use serde::{Deserialize, Serialize};
use wp_cache::{DCachePolicy, L1Config};

use crate::compare::DcacheFigure;
use crate::engine::{SimEngine, SimMatrix, SimPlan};
use crate::runner::RunOptions;

/// The regenerated Figure 8.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig8Result {
    /// One entry per associativity: (ways, figure).
    pub by_associativity: Vec<(usize, DcacheFigure)>,
}

/// The paper's average savings per associativity (percent).
const PAPER_SAVINGS: [(usize, f64); 3] = [(2, 38.0), (4, 69.0), (8, 82.0)];

const POLICIES: [DCachePolicy; 1] = [DCachePolicy::SelDmWayPredict];

/// The simulation points Figure 8 needs.
pub fn plan(options: &RunOptions) -> SimPlan {
    let mut plan = SimPlan::new();
    for &(ways, _) in PAPER_SAVINGS.iter() {
        plan.merge(DcacheFigure::plan(
            &POLICIES,
            L1Config::paper_dcache().with_associativity(ways),
            options,
        ));
    }
    plan
}

/// Renders Figure 8 from an executed matrix containing [`plan`]'s points.
pub fn from_matrix(matrix: &SimMatrix, options: &RunOptions) -> Fig8Result {
    let by_associativity = PAPER_SAVINGS
        .iter()
        .map(|&(ways, paper)| {
            let figure = DcacheFigure::from_matrix(
                matrix,
                &format!("Figure 8: {ways}-way selective-DM + way-prediction"),
                &POLICIES,
                L1Config::paper_dcache().with_associativity(ways),
                options,
                &[("seldm+waypred", paper, 0.0)],
            );
            (ways, figure)
        })
        .collect();
    Fig8Result { by_associativity }
}

/// Regenerates Figure 8 standalone (plans, executes, renders).
pub fn run(options: &RunOptions) -> Fig8Result {
    from_matrix(&SimEngine::default().run(&plan(options)), options)
}

impl Fig8Result {
    /// Renders all three associativities.
    pub fn to_table(&self) -> String {
        self.by_associativity
            .iter()
            .map(|(_, f)| f.to_table())
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// The measured average savings per associativity, as
    /// (ways, savings-fraction) pairs.
    pub fn savings_by_associativity(&self) -> Vec<(usize, f64)> {
        self.by_associativity
            .iter()
            .map(|(ways, f)| {
                (
                    *ways,
                    f.average_savings(DCachePolicy::SelDmWayPredict)
                        .unwrap_or(0.0),
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn savings_grow_with_associativity() {
        let result = run(&RunOptions::quick());
        let savings = result.savings_by_associativity();
        assert_eq!(savings.len(), 3);
        assert!(
            savings[0].1 < savings[1].1 && savings[1].1 < savings[2].1,
            "savings must grow with associativity: {savings:?}"
        );
        // 8-way savings should be deep, 2-way clearly shallower.
        assert!(savings[2].1 > 0.6, "{savings:?}");
        assert!(savings[0].1 < savings[2].1 - 0.15, "{savings:?}");
    }
}
