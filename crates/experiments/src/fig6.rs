//! Figure 6 — selective direct-mapping schemes.
//!
//! Selective-DM sends the ~77 % of loads that are non-conflicting straight
//! to their direct-mapping way and handles the conflicting remainder with
//! parallel, way-predicted, or sequential access. The paper reports average
//! energy-delay reductions of 59 % (with parallel fallback), 69 % (with
//! way-prediction) and 73 % (with sequential access) at 2.0 %, 2.4 % and
//! 3.4 % performance degradation, against 63 % / 2.9 % for pure PC
//! way-prediction and 68 % / 11 % for a sequential cache.

use serde::{Deserialize, Serialize};
use wp_cache::{DCachePolicy, L1Config};

use crate::compare::DcacheFigure;
use crate::engine::{SimEngine, SimMatrix, SimPlan};
use crate::runner::RunOptions;

/// The regenerated Figure 6.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig6Result {
    /// The underlying comparison across the five schemes the figure plots.
    pub figure: DcacheFigure,
}

const TITLE: &str = "Figure 6: selective-DM schemes, relative to 1-cycle parallel access";
const POLICIES: [DCachePolicy; 5] = [
    DCachePolicy::SelDmParallel,
    DCachePolicy::SelDmWayPredict,
    DCachePolicy::SelDmSequential,
    DCachePolicy::WayPredictPc,
    DCachePolicy::Sequential,
];
const PAPER: [(&str, f64, f64); 5] = [
    ("seldm+parallel", 59.0, 2.0),
    ("seldm+waypred", 69.0, 2.4),
    ("seldm+sequential", 73.0, 3.4),
    ("waypred-pc", 63.0, 2.9),
    ("sequential", 68.0, 11.0),
];

/// The simulation points Figure 6 needs.
pub fn plan(options: &RunOptions) -> SimPlan {
    DcacheFigure::plan(&POLICIES, L1Config::paper_dcache(), options)
}

/// Renders Figure 6 from an executed matrix containing [`plan`]'s points.
pub fn from_matrix(matrix: &SimMatrix, options: &RunOptions) -> Fig6Result {
    Fig6Result {
        figure: DcacheFigure::from_matrix(
            matrix,
            TITLE,
            &POLICIES,
            L1Config::paper_dcache(),
            options,
            &PAPER,
        ),
    }
}

/// Regenerates Figure 6 standalone (plans, executes, renders).
pub fn run(options: &RunOptions) -> Fig6Result {
    from_matrix(&SimEngine::default().run(&plan(options)), options)
}

impl Fig6Result {
    /// Renders the figure data as text.
    pub fn to_table(&self) -> String {
        self.figure.to_table()
    }

    /// The measured average fraction of loads correctly handled as
    /// direct-mapped (the paper reports ~77 %).
    pub fn average_dm_fraction(&self) -> f64 {
        self.figure
            .averages
            .iter()
            .find(|r| r.policy == DCachePolicy::SelDmWayPredict.label())
            .map(|r| r.seldm_dm_fraction)
            .unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seldm_orderings_match_the_paper() {
        let result = run(&RunOptions::quick());
        let f = &result.figure;
        let parallel = f
            .average_savings(DCachePolicy::SelDmParallel)
            .expect("present");
        let waypred = f
            .average_savings(DCachePolicy::SelDmWayPredict)
            .expect("present");
        let sequential = f
            .average_savings(DCachePolicy::SelDmSequential)
            .expect("present");
        // Energy ordering: parallel fallback < way-predicted < sequential.
        assert!(
            parallel < waypred + 0.02,
            "parallel {parallel} vs waypred {waypred}"
        );
        assert!(
            waypred < sequential + 0.02,
            "waypred {waypred} vs sequential {sequential}"
        );
        // Performance: all selective-DM schemes degrade far less than a
        // sequential cache.
        let seq_cache = f
            .average_degradation(DCachePolicy::Sequential)
            .expect("present");
        let seldm_seq = f
            .average_degradation(DCachePolicy::SelDmSequential)
            .expect("present");
        assert!(seldm_seq < seq_cache, "{seldm_seq} vs {seq_cache}");
    }

    #[test]
    fn most_loads_are_handled_direct_mapped() {
        let result = run(&RunOptions::quick());
        let dm = result.average_dm_fraction();
        assert!(dm > 0.55, "direct-mapped fraction {dm}");
    }
}
