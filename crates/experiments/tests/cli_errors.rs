//! Command-line error paths of the experiment binaries, asserted against
//! the *exact* messages: an unknown flag, a flag missing its value, a
//! bad integer, and a broken `--profile` file must each print
//! `error: <specific message>` plus the usage line to stderr and exit
//! with status 2 — across the binaries (`run_all`, `trace_capture`,
//! `trace_replay`, `conformance`, `coverage_report`).

use std::path::PathBuf;
use std::process::Command;

/// Runs a binary with `args`; returns `(exit_code, stderr)`.
fn run(binary: &str, args: &[&str]) -> (i32, String) {
    let output = Command::new(binary)
        .args(args)
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn {binary}: {e}"));
    (
        output.status.code().expect("binary exited with a code"),
        String::from_utf8_lossy(&output.stderr).into_owned(),
    )
}

/// Asserts the binary rejects `args` with exactly `message` on the first
/// stderr line, prints a usage line, and exits 2.
fn assert_cli_error(binary: &str, args: &[&str], message: &str) {
    let (code, stderr) = run(binary, args);
    assert_eq!(code, 2, "{binary} {args:?} must exit 2; stderr: {stderr}");
    let first = stderr.lines().next().unwrap_or_default();
    assert_eq!(
        first,
        format!("error: {message}"),
        "{binary} {args:?} printed the wrong error"
    );
    assert!(
        stderr.contains("usage:"),
        "{binary} {args:?} must print usage; stderr: {stderr}"
    );
}

#[test]
fn run_all_rejects_bad_command_lines_with_exact_messages() {
    let bin = env!("CARGO_BIN_EXE_run_all");
    assert_cli_error(bin, &["--frobnicate"], "unknown flag `--frobnicate`");
    assert_cli_error(bin, &["--ops"], "flag `--ops` requires a value");
    assert_cli_error(bin, &["--seed"], "flag `--seed` requires a value");
    assert_cli_error(
        bin,
        &["--ops", "abc"],
        "invalid value `abc` for flag `--ops`",
    );
    assert_cli_error(
        bin,
        &["--threads", "0"],
        "invalid value `0` for flag `--threads`",
    );
    assert_cli_error(
        bin,
        &["--stream-cap", "lots"],
        "invalid value `lots` for flag `--stream-cap`",
    );
    assert_cli_error(
        bin,
        &["--matrix-cache-dir"],
        "flag `--matrix-cache-dir` requires a value",
    );
    assert_cli_error(
        bin,
        &["--matrix-cache-cap"],
        "flag `--matrix-cache-cap` requires a value",
    );
    assert_cli_error(
        bin,
        &["--matrix-cache-cap", "lots"],
        "invalid value `lots` for flag `--matrix-cache-cap`",
    );
    // A zero-byte cache could hold nothing: reject the misconfiguration
    // rather than silently thrash every stored record.
    assert_cli_error(
        bin,
        &["--matrix-cache-cap", "0"],
        "invalid value `0` for flag `--matrix-cache-cap`",
    );
    assert_cli_error(
        bin,
        &["--health-json"],
        "flag `--health-json` requires a value",
    );
}

#[test]
fn trace_capture_rejects_bad_command_lines_with_exact_messages() {
    let bin = env!("CARGO_BIN_EXE_trace_capture");
    assert_cli_error(bin, &["--frobnicate"], "unknown flag `--frobnicate`");
    assert_cli_error(bin, &["--workload"], "flag `--workload` requires a value");
    assert_cli_error(bin, &["--out"], "flag `--out` requires a value");
    assert_cli_error(
        bin,
        &["--workload", "gcc", "--out", "/tmp/x.wptr", "--ops", "abc"],
        "invalid --ops `abc`",
    );
    assert_cli_error(
        bin,
        &["--workload", "gcc", "--out", "/tmp/x.wptr", "--seed", "1.5"],
        "invalid --seed `1.5`",
    );
    assert_cli_error(
        bin,
        &["--out", "/tmp/x.wptr"],
        "missing required flag `--workload` (or `--profile`)",
    );
    assert_cli_error(
        bin,
        &[
            "--workload",
            "gcc",
            "--profile",
            "/tmp/p.json",
            "--out",
            "/tmp/x",
        ],
        "flags `--workload` and `--profile` are mutually exclusive",
    );
    // Unknown workloads enumerate the valid names.
    let (code, stderr) = run(bin, &["--workload", "nonesuch", "--out", "/tmp/x.wptr"]);
    assert_eq!(code, 2);
    assert!(stderr.contains("error: unknown workload `nonesuch` (expected one of: "));
    assert!(stderr.contains("gcc") && stderr.contains("pointer_chase"));
}

#[test]
fn trace_replay_rejects_bad_command_lines_with_exact_messages() {
    let bin = env!("CARGO_BIN_EXE_trace_replay");
    assert_cli_error(bin, &["--frobnicate"], "unknown flag `--frobnicate`");
    assert_cli_error(bin, &["--trace"], "flag `--trace` requires a value");
    assert_cli_error(
        bin,
        &["--trace", "/tmp/x.wptr", "--ops", "abc"],
        "invalid --ops `abc`",
    );
    assert_cli_error(
        bin,
        &["--trace", "/tmp/x.wptr", "--threads", "0"],
        "invalid --threads `0`",
    );
    assert_cli_error(
        bin,
        &["--trace", "/tmp/x.wptr", "--matrix-cache-cap"],
        "flag `--matrix-cache-cap` requires a value",
    );
    assert_cli_error(
        bin,
        &["--trace", "/tmp/x.wptr", "--matrix-cache-cap", "0"],
        "invalid --matrix-cache-cap `0`",
    );
    assert_cli_error(bin, &[], "missing required flag `--trace`");
}

/// Writes `text` to a fresh temp file and returns its path.
fn temp_profile(name: &str, text: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("wpsdm-cli-errors-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(name);
    std::fs::write(&path, text).expect("temp profile");
    path
}

#[test]
fn profile_flag_rejects_broken_files_with_exact_messages() {
    // Every consumer routes `--profile` through the same loader, so one
    // binary per failure class suffices; run_all and coverage_report are
    // both exercised to pin the shared plumbing.
    let run_all = env!("CARGO_BIN_EXE_run_all");
    let coverage = env!("CARGO_BIN_EXE_coverage_report");

    assert_cli_error(run_all, &["--profile"], "flag `--profile` requires a value");
    assert_cli_error(
        run_all,
        &["--profile", "/nonexistent/profile.json"],
        "cannot read profile `/nonexistent/profile.json`: file not found",
    );

    let bad_version = temp_profile("bad_version.json", r#"{ "version": 9 }"#);
    assert_cli_error(
        coverage,
        &["--profile", bad_version.to_str().unwrap()],
        &format!(
            "profile `{}` has unsupported version 9 (expected 1)",
            bad_version.display()
        ),
    );

    let unknown_field = temp_profile(
        "unknown_field.json",
        r#"{ "version": 1, "tier": "stress", "bogus": 3 }"#,
    );
    assert_cli_error(
        coverage,
        &["--profile", unknown_field.to_str().unwrap()],
        &format!(
            "unknown field `bogus` in profile `{}` (expected one of: version, name, tier, scenarios)",
            unknown_field.display()
        ),
    );

    // Single-artefact binaries reject the flag outright rather than
    // silently ignoring a workload the artefact cannot honour.
    assert_cli_error(
        env!("CARGO_BIN_EXE_fig6"),
        &["--profile", "/tmp/p.json"],
        "flag `--profile` is not supported by single-artefact binaries",
    );
}

#[test]
fn conformance_rejects_bad_command_lines_with_exact_messages() {
    let bin = env!("CARGO_BIN_EXE_conformance");
    // Shared flags go through the same parser as the artefact binaries, so
    // the messages are identical to run_all's.
    assert_cli_error(bin, &["--frobnicate"], "unknown flag `--frobnicate`");
    assert_cli_error(bin, &["--ops"], "flag `--ops` requires a value");
    assert_cli_error(
        bin,
        &["--seed", "abc"],
        "invalid value `abc` for flag `--seed`",
    );
    // Conformance-specific flags use the same error vocabulary.
    assert_cli_error(bin, &["--random"], "flag `--random` requires a value");
    assert_cli_error(
        bin,
        &["--random", "many"],
        "invalid value `many` for flag `--random`",
    );
    assert_cli_error(
        bin,
        &["--golden-dir"],
        "flag `--golden-dir` requires a value",
    );
    assert_cli_error(
        bin,
        &["--faulty-cache"],
        "flag `--faulty-cache` requires a value",
    );
    assert_cli_error(
        bin,
        &["--faulty-cache", "xyz"],
        "invalid value `xyz` for flag `--faulty-cache`",
    );
    // Conformance must execute both stacks: the cache-control flags it
    // cannot honour are rejected, `--matrix-cache-cap` included.
    assert_cli_error(
        bin,
        &["--matrix-cache-cap", "4096"],
        "flag `--matrix-cache-cap` is not supported by conformance",
    );
    assert_cli_error(
        bin,
        &["--health-json", "/tmp/health.json"],
        "flag `--health-json` is not supported by conformance",
    );
}
