//! Command-line error paths of the experiment binaries, asserted against
//! the *exact* messages: an unknown flag, a flag missing its value, and a
//! bad integer must each print `error: <specific message>` plus the usage
//! line to stderr and exit with status 2 — across all four binaries
//! (`run_all`, `trace_capture`, `trace_replay`, `conformance`).

use std::process::Command;

/// Runs a binary with `args`; returns `(exit_code, stderr)`.
fn run(binary: &str, args: &[&str]) -> (i32, String) {
    let output = Command::new(binary)
        .args(args)
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn {binary}: {e}"));
    (
        output.status.code().expect("binary exited with a code"),
        String::from_utf8_lossy(&output.stderr).into_owned(),
    )
}

/// Asserts the binary rejects `args` with exactly `message` on the first
/// stderr line, prints a usage line, and exits 2.
fn assert_cli_error(binary: &str, args: &[&str], message: &str) {
    let (code, stderr) = run(binary, args);
    assert_eq!(code, 2, "{binary} {args:?} must exit 2; stderr: {stderr}");
    let first = stderr.lines().next().unwrap_or_default();
    assert_eq!(
        first,
        format!("error: {message}"),
        "{binary} {args:?} printed the wrong error"
    );
    assert!(
        stderr.contains("usage:"),
        "{binary} {args:?} must print usage; stderr: {stderr}"
    );
}

#[test]
fn run_all_rejects_bad_command_lines_with_exact_messages() {
    let bin = env!("CARGO_BIN_EXE_run_all");
    assert_cli_error(bin, &["--frobnicate"], "unknown flag `--frobnicate`");
    assert_cli_error(bin, &["--ops"], "flag `--ops` requires a value");
    assert_cli_error(bin, &["--seed"], "flag `--seed` requires a value");
    assert_cli_error(
        bin,
        &["--ops", "abc"],
        "invalid value `abc` for flag `--ops`",
    );
    assert_cli_error(
        bin,
        &["--threads", "0"],
        "invalid value `0` for flag `--threads`",
    );
    assert_cli_error(
        bin,
        &["--stream-cap", "lots"],
        "invalid value `lots` for flag `--stream-cap`",
    );
    assert_cli_error(
        bin,
        &["--matrix-cache-dir"],
        "flag `--matrix-cache-dir` requires a value",
    );
}

#[test]
fn trace_capture_rejects_bad_command_lines_with_exact_messages() {
    let bin = env!("CARGO_BIN_EXE_trace_capture");
    assert_cli_error(bin, &["--frobnicate"], "unknown flag `--frobnicate`");
    assert_cli_error(bin, &["--workload"], "flag `--workload` requires a value");
    assert_cli_error(bin, &["--out"], "flag `--out` requires a value");
    assert_cli_error(
        bin,
        &["--workload", "gcc", "--out", "/tmp/x.wptr", "--ops", "abc"],
        "invalid --ops `abc`",
    );
    assert_cli_error(
        bin,
        &["--workload", "gcc", "--out", "/tmp/x.wptr", "--seed", "1.5"],
        "invalid --seed `1.5`",
    );
    assert_cli_error(
        bin,
        &["--out", "/tmp/x.wptr"],
        "missing required flag `--workload`",
    );
    // Unknown workloads enumerate the valid names.
    let (code, stderr) = run(bin, &["--workload", "nonesuch", "--out", "/tmp/x.wptr"]);
    assert_eq!(code, 2);
    assert!(stderr.contains("error: unknown workload `nonesuch` (expected one of: "));
    assert!(stderr.contains("gcc") && stderr.contains("pointer_chase"));
}

#[test]
fn trace_replay_rejects_bad_command_lines_with_exact_messages() {
    let bin = env!("CARGO_BIN_EXE_trace_replay");
    assert_cli_error(bin, &["--frobnicate"], "unknown flag `--frobnicate`");
    assert_cli_error(bin, &["--trace"], "flag `--trace` requires a value");
    assert_cli_error(
        bin,
        &["--trace", "/tmp/x.wptr", "--ops", "abc"],
        "invalid --ops `abc`",
    );
    assert_cli_error(
        bin,
        &["--trace", "/tmp/x.wptr", "--threads", "0"],
        "invalid --threads `0`",
    );
    assert_cli_error(bin, &[], "missing required flag `--trace`");
}

#[test]
fn conformance_rejects_bad_command_lines_with_exact_messages() {
    let bin = env!("CARGO_BIN_EXE_conformance");
    // Shared flags go through the same parser as the artefact binaries, so
    // the messages are identical to run_all's.
    assert_cli_error(bin, &["--frobnicate"], "unknown flag `--frobnicate`");
    assert_cli_error(bin, &["--ops"], "flag `--ops` requires a value");
    assert_cli_error(
        bin,
        &["--seed", "abc"],
        "invalid value `abc` for flag `--seed`",
    );
    // Conformance-specific flags use the same error vocabulary.
    assert_cli_error(bin, &["--random"], "flag `--random` requires a value");
    assert_cli_error(
        bin,
        &["--random", "many"],
        "invalid value `many` for flag `--random`",
    );
    assert_cli_error(
        bin,
        &["--golden-dir"],
        "flag `--golden-dir` requires a value",
    );
}
