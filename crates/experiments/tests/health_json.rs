//! `run_all --health-json PATH` end-to-end: the flag writes the
//! machine-readable `CacheHealth` snapshot — the same schema the wp-serve
//! daemon returns under `health.cache` — and failures to write it are
//! reported, not swallowed.

use std::process::Command;

#[test]
fn run_all_writes_the_cache_health_snapshot() {
    let dir = std::env::temp_dir().join(format!("wpsdm-health-json-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    let health_path = dir.join("health.json");
    let output = Command::new(env!("CARGO_BIN_EXE_run_all"))
        .args(["--ops", "1500", "--json", "--health-json"])
        .arg(&health_path)
        .args(["--matrix-cache-dir"])
        .arg(dir.join("cache"))
        .output()
        .expect("run_all spawns");
    assert!(
        output.status.success(),
        "run_all failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let health = std::fs::read_to_string(&health_path).expect("health file written");
    let value = serde_json::from_str(&health).expect("health file is JSON");
    for counter in [
        "io_errors",
        "evictions",
        "lock_timeouts",
        "recovered_tmp",
        "compacted",
    ] {
        assert!(
            value.get(counter).and_then(serde::Value::as_u64).is_some(),
            "missing counter `{counter}` in {health}"
        );
    }
    assert_eq!(
        value.get("degraded").and_then(serde::Value::as_bool),
        Some(false),
        "a healthy run is not degraded: {health}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn an_unwritable_health_json_path_fails_loudly() {
    let output = Command::new(env!("CARGO_BIN_EXE_run_all"))
        .args([
            "--ops",
            "1500",
            "--health-json",
            "/nonexistent-dir/health.json",
            "--no-matrix-cache",
        ])
        .output()
        .expect("run_all spawns");
    assert_eq!(output.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("error: cannot write --health-json /nonexistent-dir/health.json:"),
        "got: {stderr}"
    );
}
