//! Energy models for the wpsdm reproduction of *Reducing Set-Associative
//! Cache Energy via Way-Prediction and Selective Direct-Mapping*
//! (Powell et al., MICRO 2001).
//!
//! Two models live here:
//!
//! * [`CacheEnergyModel`] — a CACTI-style analytic model of a set-associative
//!   SRAM cache. The paper used CACTI scaled to a 0.25 µm process; this model
//!   reproduces the *component structure* (address decode, wordlines,
//!   bitlines, sense amplifiers, way-select multiplexor, tag array) and is
//!   calibrated so a 16 KB 4-way 32 B-block cache reproduces the paper's
//!   Table 3 relative energies.
//! * [`ProcessorEnergyModel`] — a Wattch-style activity-based model of the
//!   rest of the out-of-order processor, calibrated so the two L1 caches
//!   dissipate 10–16 % of overall processor energy as the paper reports in
//!   Section 4.6.
//!
//! Energies are reported in arbitrary *energy units* (1 unit ≈ 1/1000 of a
//! 16 KB 4-way parallel read); every figure in the paper uses relative
//! energies, so only ratios matter. Use [`RelativeEnergyTable`] to obtain the
//! Table 3 view.
//!
//! # Example
//!
//! ```
//! use wp_energy::{CacheEnergyModel, RelativeEnergyTable};
//! use wp_mem::CacheGeometry;
//!
//! # fn main() -> Result<(), wp_mem::GeometryError> {
//! let geom = CacheGeometry::new(16 * 1024, 32, 4)?;
//! let model = CacheEnergyModel::new(geom);
//! let table = RelativeEnergyTable::from_model(&model);
//! // Table 3: a single-way (way-predicted / sequential / direct-mapped)
//! // read costs roughly 21 % of a parallel read.
//! assert!((table.single_way_read - 0.21).abs() < 0.02);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cacti;
mod metrics;
mod processor;
mod table;

pub use cacti::{CacheEnergyModel, PredictionTableEnergy, ProcessParameters};
pub use metrics::{average, EnergyDelay, RelativeMetrics};
pub use processor::{ActivityCounts, ProcessorEnergyConfig, ProcessorEnergyModel};
pub use table::RelativeEnergyTable;

/// Energy in arbitrary model units (≈ 1/1000 of a 16 KB 4-way parallel read).
pub type Energy = f64;
