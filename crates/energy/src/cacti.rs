//! A CACTI-style analytic energy model for set-associative SRAM caches.
//!
//! The paper estimated cache energy with CACTI scaled to a 0.25 µm process
//! (Wilton & Jouppi, WRL TR 93/5). We cannot run the original tool, so this
//! module re-creates the *component structure* of a CACTI read/write:
//! address decode and routing, wordline drive, bitline swing, sense
//! amplification, way-select multiplexing and output drive, the tag array,
//! and tag comparators. The per-component coefficients
//! ([`ProcessParameters`]) are calibrated so a 16 KB, 4-way, 32-byte-block
//! cache reproduces the paper's Table 3:
//!
//! | access | relative energy |
//! |---|---|
//! | parallel read (4 ways) | 1.00 |
//! | single-way read (sequential / way-predicted / direct-mapped) | 0.21 |
//! | write | 0.24 |
//! | tag array (included in all rows) | 0.06 |
//! | 1024-entry × 4-bit prediction table | 0.007 |
//!
//! Because the model keeps the component structure, it scales the way the
//! paper's arguments need it to: the energy wasted by a parallel read grows
//! with associativity (Figure 8), and the tag/decode share grows slightly
//! with cache size (Figure 7).

use wp_mem::CacheGeometry;

use crate::Energy;

/// Maximum number of rows driven on one bitline segment before the array is
/// split into subarrays. The paper's baseline activates only the subarrays
/// containing the addressed set; this constant models that.
const MAX_ROWS_PER_SUBARRAY: usize = 64;

/// Per-component energy coefficients of the analytic model.
///
/// All values are in model energy units (≈ 1/1000 of a 16 KB 4-way parallel
/// read). The defaults are the 0.25 µm-like calibration described in the
/// module documentation; construct a custom value to explore other process
/// points.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProcessParameters {
    /// Bitline energy per cell (per row × column) on a read.
    pub bitline_read_per_cell: f64,
    /// Bitline energy per cell on a write (full-swing, higher than read).
    pub bitline_write_per_cell: f64,
    /// Sense-amplifier energy per column.
    pub sense_amp_per_column: f64,
    /// Wordline drive energy per column.
    pub wordline_per_column: f64,
    /// Write-driver energy per column.
    pub write_driver_per_column: f64,
    /// Way-select multiplexor and output-drive energy per column, per level
    /// of the select tree. Only parallel accesses pay this for every way;
    /// an access that knows its way drives a single, narrower path.
    pub way_mux_per_column_per_level: f64,
    /// Output drive energy per column for a way-known (single-way) access.
    pub single_way_output_per_column: f64,
    /// Tag-array bitline derating relative to the data array (the tag array
    /// is a much smaller structure with shorter, lightly loaded bitlines).
    pub tag_bitline_factor: f64,
    /// Tag comparator energy per tag bit per way.
    pub tag_compare_per_bit: f64,
    /// Address-decoder energy per index bit.
    pub decode_per_index_bit: f64,
    /// Address-routing energy per sqrt(KB) of capacity (wire length grows
    /// with the array footprint).
    pub route_per_sqrt_kb: f64,
}

impl Default for ProcessParameters {
    fn default() -> Self {
        Self {
            bitline_read_per_cell: 0.005,
            bitline_write_per_cell: 0.0075,
            sense_amp_per_column: 0.2,
            wordline_per_column: 0.066,
            write_driver_per_column: 0.157,
            way_mux_per_column_per_level: 0.166,
            single_way_output_per_column: 0.02,
            tag_bitline_factor: 0.095,
            tag_compare_per_bit: 0.03,
            decode_per_index_bit: 1.0,
            route_per_sqrt_kb: 1.5,
        }
    }
}

/// Analytic energy model for one set-associative cache.
///
/// # Example
///
/// ```
/// use wp_energy::CacheEnergyModel;
/// use wp_mem::CacheGeometry;
///
/// # fn main() -> Result<(), wp_mem::GeometryError> {
/// let model = CacheEnergyModel::new(CacheGeometry::new(16 * 1024, 32, 4)?);
/// // Reading all four ways costs roughly four data ways plus the tag array.
/// assert!(model.parallel_read_energy() > 4.0 * model.data_way_read_energy());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheEnergyModel {
    geometry: CacheGeometry,
    params: ProcessParameters,
}

impl CacheEnergyModel {
    /// Builds a model for `geometry` with the default 0.25 µm-like
    /// calibration.
    pub fn new(geometry: CacheGeometry) -> Self {
        Self::with_parameters(geometry, ProcessParameters::default())
    }

    /// Builds a model for `geometry` with custom process parameters.
    pub fn with_parameters(geometry: CacheGeometry, params: ProcessParameters) -> Self {
        Self { geometry, params }
    }

    /// The geometry this model describes.
    pub fn geometry(&self) -> &CacheGeometry {
        &self.geometry
    }

    /// The process parameters in use.
    pub fn parameters(&self) -> &ProcessParameters {
        &self.params
    }

    fn rows_per_subarray(&self) -> usize {
        self.geometry.num_sets().min(MAX_ROWS_PER_SUBARRAY)
    }

    fn data_columns_per_way(&self) -> usize {
        self.geometry.block_bytes() * 8
    }

    fn way_select_levels(&self) -> f64 {
        // Depth of the way-select mux tree; a direct-mapped cache needs none
        // but still drives its output, so clamp at one level.
        (self.geometry.associativity() as f64).log2().max(1.0)
    }

    /// Energy of the address decoder and routing, paid once per access.
    pub fn decode_energy(&self) -> Energy {
        let size_kb = self.geometry.size_bytes() as f64 / 1024.0;
        self.params.decode_per_index_bit * self.geometry.index_bits() as f64
            + self.params.route_per_sqrt_kb * size_kb.sqrt()
    }

    /// Energy of probing the tag array (all ways; the paper never optimises
    /// the tag array) plus the comparators, *excluding* decode.
    pub fn tag_array_energy(&self) -> Energy {
        let p = &self.params;
        let tag_bits = self.geometry.tag_bits() as f64;
        let rows = self.rows_per_subarray() as f64;
        let per_way = p.wordline_per_column * tag_bits
            + p.bitline_read_per_cell * rows * tag_bits * p.tag_bitline_factor
            + p.sense_amp_per_column * tag_bits
            + p.tag_compare_per_bit * tag_bits;
        per_way * self.geometry.associativity() as f64
    }

    /// Tag array plus decode — the quantity the paper's Table 3 lists as
    /// "tag array energy (also included in all above rows)".
    pub fn tag_and_decode_energy(&self) -> Energy {
        self.tag_array_energy() + self.decode_energy()
    }

    /// Energy of reading one data way when the way is known in advance
    /// (sequential access, a correct way-prediction, or a direct-mapping
    /// probe). Excludes the tag array.
    pub fn data_way_read_energy(&self) -> Energy {
        let p = &self.params;
        let cols = self.data_columns_per_way() as f64;
        let rows = self.rows_per_subarray() as f64;
        p.wordline_per_column * cols
            + p.bitline_read_per_cell * rows * cols
            + p.sense_amp_per_column * cols
            + p.single_way_output_per_column * cols
    }

    /// Energy of reading one data way as part of a parallel read: the core
    /// way read plus this way's share of the way-select multiplexor and the
    /// full-width output drive.
    pub fn data_way_parallel_read_energy(&self) -> Energy {
        let p = &self.params;
        let cols = self.data_columns_per_way() as f64;
        self.data_way_read_energy() - p.single_way_output_per_column * cols
            + p.way_mux_per_column_per_level * cols * self.way_select_levels()
    }

    /// Energy of writing one data way (stores probe the tag first and write
    /// only the matching way, in every design option).
    pub fn data_way_write_energy(&self) -> Energy {
        let p = &self.params;
        let cols = self.data_columns_per_way() as f64;
        let rows = self.rows_per_subarray() as f64;
        p.wordline_per_column * cols
            + p.bitline_write_per_cell * rows * cols
            + p.write_driver_per_column * cols
    }

    /// Total energy of a conventional parallel read: tag array + decode +
    /// all `N` data ways.
    pub fn parallel_read_energy(&self) -> Energy {
        self.tag_and_decode_energy()
            + self.geometry.associativity() as f64 * self.data_way_parallel_read_energy()
    }

    /// Total energy of a read that probes exactly `ways_probed` data ways
    /// (plus the tag array and decode). `n_way_read_energy(1)` is the
    /// sequential / way-predicted / direct-mapped read;
    /// `n_way_read_energy(2)` is a mispredicted read (first probe plus the
    /// corrective probe of the matching way).
    pub fn n_way_read_energy(&self, ways_probed: usize) -> Energy {
        self.tag_and_decode_energy() + ways_probed as f64 * self.data_way_read_energy()
    }

    /// Total energy of a single-way read (Table 3's "sequential-access,
    /// way-predicted, or direct-mapping access").
    pub fn single_way_read_energy(&self) -> Energy {
        self.n_way_read_energy(1)
    }

    /// Total energy of a mispredicted read: the wrongly probed way plus the
    /// second probe of the matching way (Section 2.1: "only two data ways
    /// are accessed in all").
    pub fn mispredicted_read_energy(&self) -> Energy {
        self.n_way_read_energy(2)
    }

    /// Total energy of a store: tag probe plus a single data-way write.
    pub fn write_energy(&self) -> Energy {
        self.tag_and_decode_energy() + self.data_way_write_energy()
    }
}

/// Energy model for the small SRAM lookup tables the techniques add: the
/// way-prediction table, the selective-DM prediction table, the victim list,
/// and the way fields added to the BTB, SAWP and RAS.
///
/// The paper reports a 1024-entry × 4-bit table at 0.007 of a parallel read
/// and states every prediction-structure overhead stays below 1 % of the
/// conventional d-cache energy; this model is used to charge those overheads
/// explicitly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PredictionTableEnergy {
    entries: usize,
    bits_per_entry: usize,
    params: ProcessParameters,
}

impl PredictionTableEnergy {
    /// A table of `entries` rows of `bits_per_entry` bits, with the default
    /// process calibration.
    pub fn new(entries: usize, bits_per_entry: usize) -> Self {
        Self::with_parameters(entries, bits_per_entry, ProcessParameters::default())
    }

    /// Same as [`PredictionTableEnergy::new`] with explicit process
    /// parameters.
    pub fn with_parameters(
        entries: usize,
        bits_per_entry: usize,
        params: ProcessParameters,
    ) -> Self {
        Self {
            entries,
            bits_per_entry,
            params,
        }
    }

    /// Number of entries in the table.
    pub fn entries(&self) -> usize {
        self.entries
    }

    /// Width of each entry in bits.
    pub fn bits_per_entry(&self) -> usize {
        self.bits_per_entry
    }

    /// Energy of one read or write of the table.
    ///
    /// Small tables are laid out as a single subarray with column muxing, so
    /// the bitline length is bounded by the same subarray limit as the
    /// caches.
    pub fn access_energy(&self) -> Energy {
        let p = &self.params;
        let rows = self.entries.min(4 * MAX_ROWS_PER_SUBARRAY) as f64;
        let cols = self.bits_per_entry as f64;
        let decode = p.decode_per_index_bit * (self.entries as f64).log2().max(1.0) * 0.25;
        p.wordline_per_column * cols
            + p.bitline_read_per_cell * rows * cols
            + p.sense_amp_per_column * cols
            + decode
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_l1() -> CacheEnergyModel {
        CacheEnergyModel::new(CacheGeometry::new(16 * 1024, 32, 4).expect("valid geometry"))
    }

    #[test]
    fn table3_single_way_read_ratio() {
        let m = paper_l1();
        let ratio = m.single_way_read_energy() / m.parallel_read_energy();
        assert!((ratio - 0.21).abs() < 0.02, "single-way ratio {ratio}");
    }

    #[test]
    fn table3_write_ratio() {
        let m = paper_l1();
        let ratio = m.write_energy() / m.parallel_read_energy();
        assert!((ratio - 0.24).abs() < 0.02, "write ratio {ratio}");
    }

    #[test]
    fn table3_tag_ratio() {
        let m = paper_l1();
        let ratio = m.tag_and_decode_energy() / m.parallel_read_energy();
        assert!((ratio - 0.06).abs() < 0.015, "tag ratio {ratio}");
    }

    #[test]
    fn table3_prediction_table_ratio() {
        let m = paper_l1();
        let t = PredictionTableEnergy::new(1024, 4);
        let ratio = t.access_energy() / m.parallel_read_energy();
        assert!(
            (ratio - 0.007).abs() < 0.004,
            "prediction table ratio {ratio}"
        );
    }

    #[test]
    fn misprediction_costs_one_extra_way() {
        let m = paper_l1();
        let extra = m.mispredicted_read_energy() - m.single_way_read_energy();
        assert!((extra - m.data_way_read_energy()).abs() < 1e-9);
    }

    #[test]
    fn misprediction_cheaper_than_parallel_above_two_ways() {
        // Section 2.1: "the total energy of a misprediction is not as high as
        // that of a parallel access when set-associativity is greater than
        // two."
        for assoc in [4usize, 8] {
            let m = CacheEnergyModel::new(
                CacheGeometry::new(16 * 1024, 32, assoc).expect("valid geometry"),
            );
            assert!(m.mispredicted_read_energy() < m.parallel_read_energy());
        }
    }

    #[test]
    fn parallel_energy_grows_with_associativity() {
        let energies: Vec<f64> = [1usize, 2, 4, 8]
            .iter()
            .map(|&a| {
                CacheEnergyModel::new(CacheGeometry::new(16 * 1024, 32, a).expect("valid geometry"))
                    .parallel_read_energy()
            })
            .collect();
        assert!(energies.windows(2).all(|w| w[0] < w[1]), "{energies:?}");
    }

    #[test]
    fn single_way_fraction_shrinks_with_associativity() {
        // The energy-saving opportunity grows with associativity (Figure 8).
        let fractions: Vec<f64> = [2usize, 4, 8]
            .iter()
            .map(|&a| {
                let m = CacheEnergyModel::new(
                    CacheGeometry::new(16 * 1024, 32, a).expect("valid geometry"),
                );
                m.single_way_read_energy() / m.parallel_read_energy()
            })
            .collect();
        assert!(fractions.windows(2).all(|w| w[0] > w[1]), "{fractions:?}");
    }

    #[test]
    fn larger_cache_has_larger_tag_share() {
        // Figure 7: the un-optimised components (tag, decode, routing) grow
        // slightly as a proportion of total energy when the cache gets
        // bigger, which is why 32 KB savings are a touch lower than 16 KB.
        let share = |size: usize| {
            let m = CacheEnergyModel::new(CacheGeometry::new(size, 32, 4).expect("valid geometry"));
            m.tag_and_decode_energy() / m.parallel_read_energy()
        };
        assert!(share(32 * 1024) > share(16 * 1024));
    }

    #[test]
    fn prediction_table_much_smaller_than_cache_access() {
        let m = paper_l1();
        for (entries, bits) in [(1024, 4), (1024, 2), (16, 32), (2048, 4)] {
            let t = PredictionTableEnergy::new(entries, bits);
            assert!(t.access_energy() < 0.02 * m.parallel_read_energy());
        }
    }

    #[test]
    fn custom_parameters_are_respected() {
        let geom = CacheGeometry::new(16 * 1024, 32, 4).expect("valid geometry");
        let mut params = ProcessParameters::default();
        params.bitline_read_per_cell *= 2.0;
        let base = CacheEnergyModel::new(geom);
        let scaled = CacheEnergyModel::with_parameters(geom, params);
        assert!(scaled.data_way_read_energy() > base.data_way_read_energy());
    }
}
