//! Energy-delay bookkeeping.
//!
//! Every figure in the paper reports *relative energy-delay*: the energy of
//! the technique times its execution time, divided by the same product for
//! the baseline (a 1-cycle, parallel-access cache). [`EnergyDelay`] carries
//! an (energy, cycles) pair and [`RelativeMetrics`] the derived ratios.

use crate::Energy;

/// An (energy, execution time) pair for one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyDelay {
    /// Total energy in model units.
    pub energy: Energy,
    /// Execution time in cycles.
    pub cycles: u64,
}

impl EnergyDelay {
    /// Creates a new energy-delay point.
    pub fn new(energy: Energy, cycles: u64) -> Self {
        Self { energy, cycles }
    }

    /// The energy-delay product.
    pub fn product(&self) -> f64 {
        self.energy * self.cycles as f64
    }

    /// Computes this run's metrics relative to `baseline`.
    ///
    /// # Panics
    ///
    /// Panics if the baseline has zero energy or zero cycles, which can only
    /// happen if the baseline simulation never ran.
    pub fn relative_to(&self, baseline: &EnergyDelay) -> RelativeMetrics {
        assert!(
            baseline.energy > 0.0 && baseline.cycles > 0,
            "baseline must have non-zero energy and cycles"
        );
        let relative_energy = self.energy / baseline.energy;
        let relative_time = self.cycles as f64 / baseline.cycles as f64;
        RelativeMetrics {
            relative_energy,
            relative_time,
            relative_energy_delay: relative_energy * relative_time,
        }
    }
}

/// Ratios of one configuration against a baseline configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RelativeMetrics {
    /// Energy of the technique divided by energy of the baseline.
    pub relative_energy: f64,
    /// Execution time of the technique divided by the baseline's.
    pub relative_time: f64,
    /// Product of the two — the quantity the paper's figures plot.
    pub relative_energy_delay: f64,
}

impl RelativeMetrics {
    /// Energy-delay *savings* as a fraction in `[0, 1]` (the paper quotes
    /// e.g. "69 % energy-delay reduction").
    pub fn energy_delay_savings(&self) -> f64 {
        1.0 - self.relative_energy_delay
    }

    /// Performance degradation as a fraction (relative execution time minus
    /// one); negative values are speedups.
    pub fn performance_degradation(&self) -> f64 {
        self.relative_time - 1.0
    }

    /// Energy savings as a fraction in `[0, 1]`.
    pub fn energy_savings(&self) -> f64 {
        1.0 - self.relative_energy
    }
}

/// Averages a set of relative metrics (the paper reports unweighted averages
/// across its eleven benchmarks).
pub fn average(metrics: &[RelativeMetrics]) -> Option<RelativeMetrics> {
    if metrics.is_empty() {
        return None;
    }
    let n = metrics.len() as f64;
    let relative_energy = metrics.iter().map(|m| m.relative_energy).sum::<f64>() / n;
    let relative_time = metrics.iter().map(|m| m.relative_time).sum::<f64>() / n;
    let relative_energy_delay = metrics.iter().map(|m| m.relative_energy_delay).sum::<f64>() / n;
    Some(RelativeMetrics {
        relative_energy,
        relative_time,
        relative_energy_delay,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_runs_have_unit_ratios() {
        let a = EnergyDelay::new(100.0, 1000);
        let m = a.relative_to(&a);
        assert_eq!(m.relative_energy, 1.0);
        assert_eq!(m.relative_time, 1.0);
        assert_eq!(m.relative_energy_delay, 1.0);
        assert_eq!(m.energy_delay_savings(), 0.0);
        assert_eq!(m.performance_degradation(), 0.0);
    }

    #[test]
    fn savings_and_degradation_have_expected_signs() {
        let baseline = EnergyDelay::new(100.0, 1000);
        let technique = EnergyDelay::new(30.0, 1030);
        let m = technique.relative_to(&baseline);
        assert!(m.energy_delay_savings() > 0.6);
        assert!(m.performance_degradation() > 0.0 && m.performance_degradation() < 0.05);
        assert!(m.energy_savings() > 0.69);
    }

    #[test]
    fn speedup_yields_negative_degradation() {
        let baseline = EnergyDelay::new(100.0, 1000);
        let faster = EnergyDelay::new(100.0, 900);
        assert!(faster.relative_to(&baseline).performance_degradation() < 0.0);
    }

    #[test]
    fn product_is_energy_times_cycles() {
        let a = EnergyDelay::new(2.5, 4);
        assert_eq!(a.product(), 10.0);
    }

    #[test]
    fn average_of_empty_is_none() {
        assert!(average(&[]).is_none());
    }

    #[test]
    fn average_is_componentwise() {
        let baseline = EnergyDelay::new(100.0, 1000);
        let a = EnergyDelay::new(50.0, 1000).relative_to(&baseline);
        let b = EnergyDelay::new(100.0, 2000).relative_to(&baseline);
        let avg = average(&[a, b]).expect("non-empty");
        assert!((avg.relative_energy - 0.75).abs() < 1e-12);
        assert!((avg.relative_time - 1.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "baseline must have non-zero")]
    fn zero_baseline_panics() {
        let bad = EnergyDelay::new(0.0, 0);
        let _ = EnergyDelay::new(1.0, 1).relative_to(&bad);
    }
}
