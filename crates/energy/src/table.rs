//! The paper's Table 3 view of the cache energy model: every access type
//! expressed relative to a parallel read.

use crate::cacti::{CacheEnergyModel, PredictionTableEnergy};

/// Relative energies of the access types the paper distinguishes, normalised
/// to a conventional parallel read of the same cache (Table 3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RelativeEnergyTable {
    /// Parallel read with all ways probed — 1.0 by construction.
    pub parallel_read: f64,
    /// Sequential, correctly way-predicted, or direct-mapping read
    /// (one data way probed).
    pub single_way_read: f64,
    /// Mispredicted read: the wrong way plus the corrective probe.
    pub mispredicted_read: f64,
    /// Store (tag probe plus a single-way write).
    pub write: f64,
    /// Tag array plus decode, included in every row above.
    pub tag_array: f64,
    /// One access to a 1024-entry × 4-bit prediction table.
    pub prediction_table: f64,
}

impl RelativeEnergyTable {
    /// Derives the table from a cache energy model.
    pub fn from_model(model: &CacheEnergyModel) -> Self {
        let base = model.parallel_read_energy();
        let table = PredictionTableEnergy::with_parameters(1024, 4, *model.parameters());
        Self {
            parallel_read: 1.0,
            single_way_read: model.single_way_read_energy() / base,
            mispredicted_read: model.mispredicted_read_energy() / base,
            write: model.write_energy() / base,
            tag_array: model.tag_and_decode_energy() / base,
            prediction_table: table.access_energy() / base,
        }
    }

    /// Rows of the table in the order the paper prints them, as
    /// `(description, relative energy)` pairs.
    pub fn rows(&self) -> Vec<(&'static str, f64)> {
        vec![
            (
                "Parallel access cache read (all ways read)",
                self.parallel_read,
            ),
            (
                "Sequential-access, way-predicted, or direct-mapping access (1 way read)",
                self.single_way_read,
            ),
            ("Cache write", self.write),
            (
                "Tag array energy (also included in all above rows)",
                self.tag_array,
            ),
            (
                "1024 entry x 4 bit prediction table read/write",
                self.prediction_table,
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wp_mem::CacheGeometry;

    #[test]
    fn reproduces_table3_for_the_paper_cache() {
        let model =
            CacheEnergyModel::new(CacheGeometry::new(16 * 1024, 32, 4).expect("valid geometry"));
        let t = RelativeEnergyTable::from_model(&model);
        assert_eq!(t.parallel_read, 1.0);
        assert!((t.single_way_read - 0.21).abs() < 0.02);
        assert!((t.write - 0.24).abs() < 0.02);
        assert!((t.tag_array - 0.06).abs() < 0.015);
        assert!((t.prediction_table - 0.007).abs() < 0.004);
        assert!(t.mispredicted_read > t.single_way_read);
        assert!(t.mispredicted_read < 1.0);
    }

    #[test]
    fn rows_match_fields() {
        let model =
            CacheEnergyModel::new(CacheGeometry::new(16 * 1024, 32, 4).expect("valid geometry"));
        let t = RelativeEnergyTable::from_model(&model);
        let rows = t.rows();
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[0].1, t.parallel_read);
        assert_eq!(rows[1].1, t.single_way_read);
        assert_eq!(rows[2].1, t.write);
    }
}
