//! A Wattch-style activity-based model of overall processor energy.
//!
//! The paper estimates overall processor energy with Wattch on top of
//! SimpleScalar and reports that the two L1 caches dissipate 10–16 % of the
//! total, which bounds the overall energy-delay reduction achievable by the
//! cache techniques to about 10 % (Section 4.6 / Figure 11).
//!
//! [`ProcessorEnergyModel`] charges a fixed energy per microarchitectural
//! event (decode, rename, issue-window operation, register-file access,
//! functional-unit operation, reorder-buffer and load/store-queue traffic,
//! result-bus drive, L2 access) plus a per-cycle clock-tree cost, and adds
//! the L1 energies computed by the cache controllers. The per-event
//! constants are calibrated so the L1 share lands in the paper's 10–16 %
//! band for the simulated workloads.

use crate::Energy;

/// Per-event energy costs of the non-cache parts of the processor, in the
/// same units as [`crate::CacheEnergyModel`] (≈ 1/1000 of a 16 KB 4-way
/// parallel read).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProcessorEnergyConfig {
    /// Fetch-stage (excluding i-cache) plus decode energy per instruction.
    pub decode_per_instruction: Energy,
    /// Rename and dependence-check energy per instruction.
    pub rename_per_instruction: Energy,
    /// Issue-window insertion, wakeup and select energy per instruction.
    pub window_per_instruction: Energy,
    /// Register-file read/write energy per instruction.
    pub regfile_per_instruction: Energy,
    /// Integer ALU operation energy.
    pub int_alu_per_op: Energy,
    /// Floating-point unit operation energy.
    pub fp_alu_per_op: Energy,
    /// Reorder-buffer energy per instruction (dispatch + commit).
    pub rob_per_instruction: Energy,
    /// Load/store-queue energy per memory operation.
    pub lsq_per_mem_op: Energy,
    /// Result-bus drive energy per completing instruction.
    pub result_bus_per_instruction: Energy,
    /// Clock-tree energy per cycle.
    pub clock_per_cycle: Energy,
    /// L2 cache access energy (reads and writes).
    pub l2_per_access: Energy,
    /// Branch-predictor access energy per fetched branch.
    pub branch_predictor_per_branch: Energy,
}

impl Default for ProcessorEnergyConfig {
    fn default() -> Self {
        Self {
            decode_per_instruction: 350.0,
            rename_per_instruction: 350.0,
            window_per_instruction: 650.0,
            regfile_per_instruction: 500.0,
            int_alu_per_op: 500.0,
            fp_alu_per_op: 800.0,
            rob_per_instruction: 300.0,
            lsq_per_mem_op: 350.0,
            result_bus_per_instruction: 200.0,
            clock_per_cycle: 1500.0,
            l2_per_access: 3000.0,
            branch_predictor_per_branch: 120.0,
        }
    }
}

/// Activity counts produced by one run of the processor timing model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ActivityCounts {
    /// Total execution cycles.
    pub cycles: u64,
    /// Committed instructions.
    pub instructions: u64,
    /// Committed integer ALU operations.
    pub int_ops: u64,
    /// Committed floating-point operations.
    pub fp_ops: u64,
    /// Committed loads.
    pub loads: u64,
    /// Committed stores.
    pub stores: u64,
    /// Committed branches.
    pub branches: u64,
    /// Accesses that reached the L2 cache.
    pub l2_accesses: u64,
}

impl ActivityCounts {
    /// Committed memory operations (loads + stores).
    pub fn mem_ops(&self) -> u64 {
        self.loads + self.stores
    }

    /// Instructions per cycle; zero when no cycle has elapsed.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }
}

/// Breakdown of overall processor energy for one run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProcessorEnergyBreakdown {
    /// Energy of the non-cache core (pipeline, register file, ALUs, clock…).
    pub core: Energy,
    /// Energy of the L2 cache.
    pub l2: Energy,
    /// Energy of the L1 instruction cache (supplied by its controller).
    pub l1_icache: Energy,
    /// Energy of the L1 data cache including its prediction structures.
    pub l1_dcache: Energy,
}

impl ProcessorEnergyBreakdown {
    /// Total processor energy.
    pub fn total(&self) -> Energy {
        self.core + self.l2 + self.l1_icache + self.l1_dcache
    }

    /// Fraction of overall energy dissipated in the two L1 caches — the
    /// quantity the paper reports as 10–16 %.
    pub fn l1_fraction(&self) -> f64 {
        let total = self.total();
        if total == 0.0 {
            0.0
        } else {
            (self.l1_icache + self.l1_dcache) / total
        }
    }
}

/// Wattch-style processor energy model.
///
/// # Example
///
/// ```
/// use wp_energy::{ActivityCounts, ProcessorEnergyModel};
///
/// let model = ProcessorEnergyModel::default();
/// let counts = ActivityCounts {
///     cycles: 500,
///     instructions: 1000,
///     int_ops: 500,
///     fp_ops: 100,
///     loads: 250,
///     stores: 120,
///     branches: 150,
///     l2_accesses: 20,
/// };
/// let breakdown = model.breakdown(&counts, 210_000.0, 280_000.0);
/// // The L1 caches sit in the paper's 10-16 % band for this activity mix.
/// assert!(breakdown.l1_fraction() > 0.08 && breakdown.l1_fraction() < 0.20);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ProcessorEnergyModel {
    config: ProcessorEnergyConfig,
}

impl ProcessorEnergyModel {
    /// Builds a model with custom per-event energies.
    pub fn new(config: ProcessorEnergyConfig) -> Self {
        Self { config }
    }

    /// The per-event energy configuration.
    pub fn config(&self) -> &ProcessorEnergyConfig {
        &self.config
    }

    /// Energy of the non-cache core for the given activity.
    pub fn core_energy(&self, counts: &ActivityCounts) -> Energy {
        let c = &self.config;
        let per_instruction = c.decode_per_instruction
            + c.rename_per_instruction
            + c.window_per_instruction
            + c.regfile_per_instruction
            + c.rob_per_instruction
            + c.result_bus_per_instruction;
        per_instruction * counts.instructions as f64
            + c.int_alu_per_op * counts.int_ops as f64
            + c.fp_alu_per_op * counts.fp_ops as f64
            + c.lsq_per_mem_op * counts.mem_ops() as f64
            + c.branch_predictor_per_branch * counts.branches as f64
            + c.clock_per_cycle * counts.cycles as f64
    }

    /// Energy of the L2 for the given activity.
    pub fn l2_energy(&self, counts: &ActivityCounts) -> Energy {
        self.config.l2_per_access * counts.l2_accesses as f64
    }

    /// Full breakdown, combining core activity with the externally computed
    /// L1 energies (the cache controllers account for those, including
    /// prediction-table overheads).
    pub fn breakdown(
        &self,
        counts: &ActivityCounts,
        l1_icache_energy: Energy,
        l1_dcache_energy: Energy,
    ) -> ProcessorEnergyBreakdown {
        ProcessorEnergyBreakdown {
            core: self.core_energy(counts),
            l2: self.l2_energy(counts),
            l1_icache: l1_icache_energy,
            l1_dcache: l1_dcache_energy,
        }
    }

    /// Total processor energy (convenience over [`Self::breakdown`]).
    pub fn total_energy(
        &self,
        counts: &ActivityCounts,
        l1_icache_energy: Energy,
        l1_dcache_energy: Energy,
    ) -> Energy {
        self.breakdown(counts, l1_icache_energy, l1_dcache_energy)
            .total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn typical_counts() -> ActivityCounts {
        ActivityCounts {
            cycles: 500,
            instructions: 1000,
            int_ops: 500,
            fp_ops: 100,
            loads: 250,
            stores: 120,
            branches: 150,
            l2_accesses: 20,
        }
    }

    /// L1 energies for a parallel-access baseline with the activity above:
    /// i-cache ≈ one parallel read per fetched basic block (roughly one per
    /// five instructions), d-cache ≈ loads at 1.0 and stores at 0.24, in
    /// model units of 1000 per parallel read.
    fn baseline_l1_energies() -> (f64, f64) {
        let icache = 210.0 * 1000.0;
        let dcache = 250.0 * 1000.0 + 120.0 * 240.0;
        (icache, dcache)
    }

    #[test]
    fn l1_fraction_in_paper_band() {
        let model = ProcessorEnergyModel::default();
        let (icache, dcache) = baseline_l1_energies();
        let b = model.breakdown(&typical_counts(), icache, dcache);
        let f = b.l1_fraction();
        assert!(f > 0.10 && f < 0.16, "L1 fraction {f}");
    }

    #[test]
    fn total_is_sum_of_parts() {
        let model = ProcessorEnergyModel::default();
        let b = model.breakdown(&typical_counts(), 100.0, 200.0);
        assert!((b.total() - (b.core + b.l2 + b.l1_icache + b.l1_dcache)).abs() < 1e-9);
    }

    #[test]
    fn core_energy_scales_with_activity() {
        let model = ProcessorEnergyModel::default();
        let mut more = typical_counts();
        more.instructions *= 2;
        more.cycles *= 2;
        more.int_ops *= 2;
        assert!(model.core_energy(&more) > model.core_energy(&typical_counts()));
    }

    #[test]
    fn ipc_is_instructions_over_cycles() {
        let counts = typical_counts();
        assert!((counts.ipc() - 2.0).abs() < 1e-12);
        assert_eq!(ActivityCounts::default().ipc(), 0.0);
    }

    #[test]
    fn empty_breakdown_has_zero_fraction() {
        let b = ProcessorEnergyBreakdown {
            core: 0.0,
            l2: 0.0,
            l1_icache: 0.0,
            l1_dcache: 0.0,
        };
        assert_eq!(b.l1_fraction(), 0.0);
    }

    #[test]
    fn reducing_cache_energy_reduces_total_by_bounded_fraction() {
        // The headline result structure: even a 70 % cut of L1 energy can
        // only move overall energy by roughly the L1 fraction times 70 %.
        let model = ProcessorEnergyModel::default();
        let (icache, dcache) = baseline_l1_energies();
        let base = model.total_energy(&typical_counts(), icache, dcache);
        let improved = model.total_energy(&typical_counts(), icache * 0.36, dcache * 0.31);
        let savings = 1.0 - improved / base;
        assert!(
            savings > 0.05 && savings < 0.15,
            "overall savings {savings}"
        );
    }
}
