//! Config-parallel lane batching for the d-cache.
//!
//! [`LaneDCache`] runs up to [`wp_mem::MAX_LANES`] d-cache configurations
//! that share a policy and a tag geometry through **one** access sequence:
//! the address is decoded once, the tag probe runs across all lanes through
//! the SoA [`wp_mem::LaneTagStore`], and only the per-configuration pieces —
//! way selection, probe pricing, predictor training, statistics — iterate
//! per lane. Configurations may differ in anything that does not change the
//! tag-store shape: probe latencies, prediction-table and victim-list
//! sizes.
//!
//! Every lane is bit-identical to a private [`crate::DCacheController`] fed
//! the same access sequence. The per-lane operation order matches
//! `DCacheController::load_kernel` exactly (placement → selection → tag
//! probe → pricing → training → accounting); the only structural difference
//! is the shared LRU clock inside the tag store, which is equivalence-proven
//! in `wp_mem::lane` (one access per lane per call means every lane sees the
//! same stamp *ordering* a private clock would produce).

use wp_energy::CacheEnergyModel;
use wp_mem::{AccessKind, AccessResult, CacheGeometry, LaneTagStore, Placement, MAX_LANES};

use crate::access::{Addr, Observation, ProbeCosts, Selection};
use crate::config::{ConfigError, L1Config};
use crate::dcache::{
    account_eviction, account_load_class, account_placement, account_selection, classify,
    DAccessClass, DAccessOutcome, DLoadCtx, DWaySelect,
};
use crate::policy::{DCachePolicy, DPolicyKernel};
use crate::stats::DCacheStats;

/// A batch of d-cache configurations simulated config-parallel over one
/// shared access stream.
///
/// # Example
///
/// ```
/// use wp_cache::{kernels, DCachePolicy, L1Config, LaneDCache};
///
/// # fn main() -> Result<(), wp_cache::ConfigError> {
/// // Two configs differing only in probe latency batch into one store.
/// let configs = [
///     L1Config::paper_dcache(),
///     L1Config::paper_dcache().with_base_latency(2),
/// ];
/// let mut lanes = LaneDCache::new(&configs, DCachePolicy::Parallel)?;
/// let mut out = [Default::default(); 2];
/// lanes.load_kernel::<kernels::Parallel>(0x400, 0x1000, 0x1000, &mut out);
/// assert!(out[0].is_miss() && out[1].is_miss());
/// lanes.load_kernel::<kernels::Parallel>(0x400, 0x1000, 0x1000, &mut out);
/// assert!(out[0].is_hit() && out[1].is_hit());
/// assert_eq!(out[0].latency, 1);
/// assert_eq!(out[1].latency, 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LaneDCache {
    geometry: CacheGeometry,
    policy: DCachePolicy,
    tags: LaneTagStore,
    selects: Vec<DWaySelect>,
    costs: Vec<ProbeCosts>,
    stats: Vec<DCacheStats>,
    // Per-access scratch, sized once so the hot path never allocates.
    placements: Vec<Placement>,
    selections: Vec<Selection>,
    results: Vec<AccessResult>,
}

impl LaneDCache {
    /// Builds a lane batch for `configs` under one shared `policy`.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if any configuration is inconsistent.
    ///
    /// # Panics
    ///
    /// Panics if `configs` is empty, wider than [`MAX_LANES`], or the
    /// configurations disagree on tag-store geometry (size, block size, or
    /// associativity) — the batcher in `wp-experiments` groups by geometry
    /// before building batches, so a mismatch here is a caller bug.
    pub fn new(configs: &[L1Config], policy: DCachePolicy) -> Result<Self, ConfigError> {
        assert!(
            !configs.is_empty() && configs.len() <= MAX_LANES,
            "lane batch width {} out of range 1..={MAX_LANES}",
            configs.len()
        );
        let geometry = configs[0].geometry()?;
        let mut selects = Vec::with_capacity(configs.len());
        let mut costs = Vec::with_capacity(configs.len());
        for config in configs {
            let lane_geometry = config.geometry()?;
            assert!(
                lane_geometry.num_sets() == geometry.num_sets()
                    && lane_geometry.block_bytes() == geometry.block_bytes()
                    && lane_geometry.associativity() == geometry.associativity(),
                "lane batch requires identical d-cache geometry"
            );
            selects.push(DWaySelect::new(config, policy));
            costs.push(ProbeCosts::new(
                config,
                &CacheEnergyModel::new(lane_geometry),
            ));
        }
        let lanes = configs.len();
        Ok(Self {
            geometry,
            policy,
            tags: LaneTagStore::new(geometry, lanes),
            selects,
            costs,
            stats: vec![DCacheStats::default(); lanes],
            placements: vec![Placement::SetAssociative; lanes],
            selections: vec![Selection::parallel(); lanes],
            results: vec![AccessResult::default(); lanes],
        })
    }

    /// Number of lanes in the batch.
    pub fn lanes(&self) -> usize {
        self.selects.len()
    }

    /// The shared access policy.
    pub fn policy(&self) -> DCachePolicy {
        self.policy
    }

    /// Accumulated statistics of one lane.
    pub fn stats(&self, lane: usize) -> &DCacheStats {
        &self.stats[lane]
    }

    /// Services the same load in every lane, writing one
    /// [`DAccessOutcome`] per lane into `out`.
    ///
    /// Mirrors [`crate::DCacheController::load_kernel`]: straight-line code
    /// for exactly one compile-time policy `K`, with the address decoded
    /// once and the tag probe vectorized across lanes.
    ///
    /// # Panics
    ///
    /// Debug-asserts that `K::POLICY` matches the batch's policy and that
    /// `out` covers every lane.
    #[inline]
    pub fn load_kernel<K: DPolicyKernel>(
        &mut self,
        pc: Addr,
        addr: Addr,
        approx_addr: Addr,
        out: &mut [DAccessOutcome],
    ) {
        debug_assert_eq!(K::POLICY, self.policy);
        debug_assert_eq!(out.len(), self.lanes());
        let ctx = DLoadCtx {
            pc,
            approx_addr,
            dm_way: self.geometry.direct_mapped_way(addr),
        };
        let block_addr = self.geometry.block_addr(addr);
        for (lane, select) in self.selects.iter_mut().enumerate() {
            self.stats[lane].loads += 1;
            self.placements[lane] = select.placement_policy(K::POLICY, block_addr);
            account_placement(&mut self.stats[lane], K::POLICY, self.placements[lane]);
            self.selections[lane] = select.select_policy(K::POLICY, &ctx);
        }
        self.tags
            .access(addr, AccessKind::Read, &self.placements, &mut self.results);
        for (lane, slot) in out.iter_mut().enumerate() {
            let result = self.results[lane];
            let selection = self.selections[lane];
            let probe = self.costs[lane].resolve(selection.choice, &result);
            let observed = Observation {
                way: result.way,
                hit: result.hit,
                in_direct_mapped_way: result.in_direct_mapped_way,
            };
            let train_energy = self.selects[lane].train_policy(K::POLICY, &ctx, observed);
            let prediction_energy = selection.energy + train_energy;
            let stats = &mut self.stats[lane];
            if !result.hit {
                stats.load_misses += 1;
            }
            account_eviction(stats, &mut self.selects[lane], result.evicted);
            account_selection(stats, K::POLICY, probe.outcome, &selection, result.hit);
            let class = classify(probe.outcome, selection.choice);
            account_load_class(stats, class);
            stats.cache_energy += probe.energy;
            stats.prediction_energy += prediction_energy;
            *slot = DAccessOutcome {
                hit: result.hit,
                latency: probe.latency,
                energy: probe.energy + prediction_energy,
                class,
                ways_probed: probe.ways_probed,
                way: result.way,
            };
        }
    }

    /// Services the same store in every lane; see
    /// [`crate::DCacheController::store`].
    #[inline]
    pub fn store(&mut self, _pc: Addr, addr: Addr, out: &mut [DAccessOutcome]) {
        debug_assert_eq!(out.len(), self.lanes());
        let block_addr = self.geometry.block_addr(addr);
        for (lane, select) in self.selects.iter().enumerate() {
            self.stats[lane].stores += 1;
            self.placements[lane] = select.placement(block_addr);
        }
        self.tags
            .access(addr, AccessKind::Write, &self.placements, &mut self.results);
        for (lane, slot) in out.iter_mut().enumerate() {
            let result = self.results[lane];
            let probe = self.costs[lane].price_write(&result);
            let stats = &mut self.stats[lane];
            if !result.hit {
                stats.store_misses += 1;
            }
            account_eviction(stats, &mut self.selects[lane], result.evicted);
            stats.cache_energy += probe.energy;
            *slot = DAccessOutcome {
                hit: result.hit,
                latency: probe.latency,
                energy: probe.energy,
                class: DAccessClass::Write,
                ways_probed: probe.ways_probed,
                way: result.way,
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dcache::DCacheController;

    /// A deterministic load/store script with enough set pressure to force
    /// evictions, mispredictions, and selective-DM conflicts.
    fn script(len: usize, salt: u64) -> Vec<(bool, Addr, Addr)> {
        let mut state = 0x2545_f491_4f6c_dd1d ^ salt;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        (0..len)
            .map(|_| {
                let is_store = next() % 4 == 0;
                let pc = 0x400 + (next() % 23) * 4;
                // Tight set working set so ways thrash.
                let addr = 0x1_0000 + (next() % 97) * 32 + (next() % 11) * (128 * 32);
                (is_store, pc, addr)
            })
            .collect()
    }

    fn lane_configs() -> Vec<L1Config> {
        vec![
            L1Config::paper_dcache(),
            L1Config::paper_dcache().with_base_latency(2),
            L1Config::paper_dcache().with_prediction_table_entries(256),
        ]
    }

    #[test]
    fn every_lane_matches_a_private_controller_for_every_policy() {
        for policy in DCachePolicy::all() {
            let configs = lane_configs();
            let mut lanes = LaneDCache::new(&configs, policy).expect("valid configs");
            let mut scalars: Vec<_> = configs
                .iter()
                .map(|c| DCacheController::new(*c, policy).expect("valid config"))
                .collect();
            let mut out = vec![DAccessOutcome::default(); configs.len()];
            for (i, (is_store, pc, addr)) in script(2000, 7).into_iter().enumerate() {
                if is_store {
                    lanes.store(pc, addr, &mut out);
                } else {
                    crate::with_dpolicy_kernel!(policy, K => {
                        lanes.load_kernel::<K>(pc, addr, addr, &mut out)
                    });
                }
                for (l, scalar) in scalars.iter_mut().enumerate() {
                    let expect = if is_store {
                        scalar.store(pc, addr)
                    } else {
                        scalar.load(pc, addr, addr)
                    };
                    assert_eq!(out[l], expect, "{policy:?} lane {l} diverged at access {i}");
                }
            }
            for (l, scalar) in scalars.iter().enumerate() {
                assert_eq!(
                    lanes.stats(l),
                    scalar.stats(),
                    "{policy:?} lane {l} stats diverged"
                );
            }
        }
    }

    #[test]
    fn mismatched_geometry_is_rejected() {
        let configs = [
            L1Config::paper_dcache(),
            L1Config::paper_dcache().with_associativity(2),
        ];
        let result = std::panic::catch_unwind(|| {
            let _ = LaneDCache::new(&configs, DCachePolicy::Parallel);
        });
        assert!(result.is_err(), "geometry mismatch must panic");
    }

    #[test]
    fn invalid_config_is_an_error() {
        let configs = [L1Config::paper_dcache().with_base_latency(0)];
        assert!(LaneDCache::new(&configs, DCachePolicy::Parallel).is_err());
    }
}
