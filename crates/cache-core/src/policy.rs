//! The design options the paper evaluates, as data.

use serde::{Deserialize, Serialize};

/// How d-cache loads are accessed (Sections 2.1–2.2, Figures 4–6, 9).
///
/// Stores always check the tag array first and write only the matching way,
/// in every policy (end of Section 2.1), so the policy applies to loads
/// only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DCachePolicy {
    /// Conventional parallel access: all ways probed, 1-cycle — the energy
    /// baseline every figure normalises to.
    Parallel,
    /// Sequential access: wait for the tag array, then probe only the
    /// matching way (Alpha 21164 L2 style). Low energy, but every access
    /// pays the serialization latency (Figure 4).
    Sequential,
    /// PC-indexed way-prediction for every load (Figure 5, "E").
    WayPredictPc,
    /// Way-prediction indexed by the XOR approximation of the load address
    /// (Figure 5, "X"). More accurate than the PC but the table lookup sits
    /// on the address-generation critical path; the paper flags it as hard
    /// to implement and we model only its energy/accuracy behaviour.
    WayPredictXor,
    /// Selective direct-mapping with parallel access for conflicting loads
    /// (Figure 6, "P").
    SelDmParallel,
    /// Selective direct-mapping with PC-based way-prediction for conflicting
    /// loads (Figure 6, "W") — the configuration the paper recommends for
    /// performance.
    SelDmWayPredict,
    /// Selective direct-mapping with sequential access for conflicting loads
    /// (Figure 6, "S") — the configuration the paper recommends for energy.
    SelDmSequential,
    /// An oracle that always probes exactly the matching way with no
    /// latency penalty: the "perfect way-prediction" bound of Figure 11.
    PerfectWayPredict,
}

impl DCachePolicy {
    /// Every concrete (implementable) policy, in the order the paper's
    /// Table 5 summarises them.
    pub fn all() -> [DCachePolicy; 7] {
        [
            DCachePolicy::Parallel,
            DCachePolicy::Sequential,
            DCachePolicy::WayPredictPc,
            DCachePolicy::WayPredictXor,
            DCachePolicy::SelDmParallel,
            DCachePolicy::SelDmWayPredict,
            DCachePolicy::SelDmSequential,
        ]
    }

    /// True if the policy uses the selective-DM prediction table and victim
    /// list.
    pub fn uses_selective_dm(&self) -> bool {
        matches!(
            self,
            DCachePolicy::SelDmParallel
                | DCachePolicy::SelDmWayPredict
                | DCachePolicy::SelDmSequential
        )
    }

    /// True if the policy uses a way-prediction table.
    pub fn uses_way_prediction(&self) -> bool {
        matches!(
            self,
            DCachePolicy::WayPredictPc
                | DCachePolicy::WayPredictXor
                | DCachePolicy::SelDmWayPredict
        )
    }

    /// A short label matching the paper's figure legends.
    pub fn label(&self) -> &'static str {
        match self {
            DCachePolicy::Parallel => "parallel",
            DCachePolicy::Sequential => "sequential",
            DCachePolicy::WayPredictPc => "waypred-pc",
            DCachePolicy::WayPredictXor => "waypred-xor",
            DCachePolicy::SelDmParallel => "seldm+parallel",
            DCachePolicy::SelDmWayPredict => "seldm+waypred",
            DCachePolicy::SelDmSequential => "seldm+sequential",
            DCachePolicy::PerfectWayPredict => "perfect-waypred",
        }
    }

    /// The inverse of [`DCachePolicy::label`]: looks a policy up by its
    /// figure-legend label (the vocabulary the service protocol and the
    /// client binaries speak). Every variant parses, the oracle bound
    /// (`perfect-waypred`) included.
    pub fn parse(label: &str) -> Option<DCachePolicy> {
        let mut all = DCachePolicy::all().to_vec();
        all.push(DCachePolicy::PerfectWayPredict);
        all.into_iter().find(|policy| policy.label() == label)
    }
}

impl std::fmt::Display for DCachePolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A [`DCachePolicy`] lifted to the type level, so the per-access policy
/// dispatch monomorphizes away.
///
/// The runtime policy enum is matched once per *access* on the generic
/// path; a kernel carries the policy as an associated constant, so
/// [`crate::DCacheController::load_kernel`] (and the processor's
/// per-policy `run_blocks` instantiations built on it) compile to
/// straight-line code for exactly one policy — the `match` folds at
/// compile time. [`kernels`] provides one zero-sized kernel per policy.
pub trait DPolicyKernel {
    /// The policy this kernel is specialised for.
    const POLICY: DCachePolicy;
}

/// One zero-sized [`DPolicyKernel`] per [`DCachePolicy`] variant.
pub mod kernels {
    use super::{DCachePolicy, DPolicyKernel};

    macro_rules! kernel {
        ($(#[$doc:meta] $name:ident => $policy:ident),* $(,)?) => {
            $(
                #[$doc]
                #[derive(Debug, Clone, Copy, Default)]
                pub struct $name;
                impl DPolicyKernel for $name {
                    const POLICY: DCachePolicy = DCachePolicy::$policy;
                }
            )*
        };
    }

    kernel! {
        /// Kernel for [`DCachePolicy::Parallel`].
        Parallel => Parallel,
        /// Kernel for [`DCachePolicy::Sequential`].
        Sequential => Sequential,
        /// Kernel for [`DCachePolicy::WayPredictPc`].
        WayPredictPc => WayPredictPc,
        /// Kernel for [`DCachePolicy::WayPredictXor`].
        WayPredictXor => WayPredictXor,
        /// Kernel for [`DCachePolicy::SelDmParallel`].
        SelDmParallel => SelDmParallel,
        /// Kernel for [`DCachePolicy::SelDmWayPredict`].
        SelDmWayPredict => SelDmWayPredict,
        /// Kernel for [`DCachePolicy::SelDmSequential`].
        SelDmSequential => SelDmSequential,
        /// Kernel for [`DCachePolicy::PerfectWayPredict`].
        PerfectWayPredict => PerfectWayPredict,
    }
}

/// Dispatches `$body` with `$kernel` bound to the [`DPolicyKernel`] type
/// matching the runtime policy `$policy` — the single point where a
/// runtime [`DCachePolicy`] is lifted to the type level.
#[macro_export]
macro_rules! with_dpolicy_kernel {
    ($policy:expr, $kernel:ident => $body:expr) => {
        match $policy {
            $crate::DCachePolicy::Parallel => {
                type $kernel = $crate::kernels::Parallel;
                $body
            }
            $crate::DCachePolicy::Sequential => {
                type $kernel = $crate::kernels::Sequential;
                $body
            }
            $crate::DCachePolicy::WayPredictPc => {
                type $kernel = $crate::kernels::WayPredictPc;
                $body
            }
            $crate::DCachePolicy::WayPredictXor => {
                type $kernel = $crate::kernels::WayPredictXor;
                $body
            }
            $crate::DCachePolicy::SelDmParallel => {
                type $kernel = $crate::kernels::SelDmParallel;
                $body
            }
            $crate::DCachePolicy::SelDmWayPredict => {
                type $kernel = $crate::kernels::SelDmWayPredict;
                $body
            }
            $crate::DCachePolicy::SelDmSequential => {
                type $kernel = $crate::kernels::SelDmSequential;
                $body
            }
            $crate::DCachePolicy::PerfectWayPredict => {
                type $kernel = $crate::kernels::PerfectWayPredict;
                $body
            }
        }
    };
}

/// How i-cache fetches are accessed (Section 2.3, Figure 10).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ICachePolicy {
    /// Conventional parallel access.
    Parallel,
    /// Way-prediction integrated with the fetch engine: BTB way fields for
    /// taken branches, the SAWP for sequential and not-taken fetches, the
    /// RAS way field for returns; parallel access when no prediction is
    /// available.
    WayPredict,
}

impl ICachePolicy {
    /// Both i-cache policies.
    pub fn all() -> [ICachePolicy; 2] {
        [ICachePolicy::Parallel, ICachePolicy::WayPredict]
    }

    /// A short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            ICachePolicy::Parallel => "parallel",
            ICachePolicy::WayPredict => "waypred",
        }
    }

    /// The inverse of [`ICachePolicy::label`].
    pub fn parse(label: &str) -> Option<ICachePolicy> {
        ICachePolicy::all()
            .into_iter()
            .find(|policy| policy.label() == label)
    }
}

impl std::fmt::Display for ICachePolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_matches_paper_structure() {
        assert!(DCachePolicy::SelDmWayPredict.uses_selective_dm());
        assert!(DCachePolicy::SelDmWayPredict.uses_way_prediction());
        assert!(DCachePolicy::SelDmSequential.uses_selective_dm());
        assert!(!DCachePolicy::SelDmSequential.uses_way_prediction());
        assert!(!DCachePolicy::Parallel.uses_selective_dm());
        assert!(DCachePolicy::WayPredictXor.uses_way_prediction());
        assert!(!DCachePolicy::Sequential.uses_way_prediction());
    }

    #[test]
    fn all_lists_are_unique() {
        let d = DCachePolicy::all();
        for (i, a) in d.iter().enumerate() {
            for b in d.iter().skip(i + 1) {
                assert_ne!(a, b);
            }
        }
        assert_ne!(ICachePolicy::all()[0], ICachePolicy::all()[1]);
    }

    #[test]
    fn labels_are_distinct_and_displayed() {
        let mut labels: Vec<_> = DCachePolicy::all().iter().map(|p| p.label()).collect();
        labels.push(DCachePolicy::PerfectWayPredict.label());
        let mut sorted = labels.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), labels.len());
        assert_eq!(DCachePolicy::SelDmWayPredict.to_string(), "seldm+waypred");
        assert_eq!(ICachePolicy::WayPredict.to_string(), "waypred");
    }

    #[test]
    fn parse_inverts_label_for_every_policy() {
        for policy in DCachePolicy::all() {
            assert_eq!(DCachePolicy::parse(policy.label()), Some(policy));
        }
        assert_eq!(
            DCachePolicy::parse("perfect-waypred"),
            Some(DCachePolicy::PerfectWayPredict)
        );
        assert_eq!(DCachePolicy::parse("nonesuch"), None);
        for policy in ICachePolicy::all() {
            assert_eq!(ICachePolicy::parse(policy.label()), Some(policy));
        }
        assert_eq!(ICachePolicy::parse("seldm+waypred"), None);
    }
}
