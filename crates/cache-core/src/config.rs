//! L1 cache configuration shared by the d-cache and i-cache controllers.

use core::fmt;

use serde::{Deserialize, Serialize};
use wp_mem::{CacheGeometry, GeometryError};

/// Error returned when an [`L1Config`] cannot be realised.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// The size / block / associativity triple is not a valid geometry.
    Geometry(GeometryError),
    /// The base latency is zero.
    ZeroLatency,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::Geometry(e) => write!(f, "invalid cache geometry: {e}"),
            ConfigError::ZeroLatency => write!(f, "base latency must be at least one cycle"),
        }
    }
}

impl std::error::Error for ConfigError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ConfigError::Geometry(e) => Some(e),
            ConfigError::ZeroLatency => None,
        }
    }
}

impl From<GeometryError> for ConfigError {
    fn from(e: GeometryError) -> Self {
        ConfigError::Geometry(e)
    }
}

/// Configuration of one L1 cache and its access-time parameters.
///
/// The paper's baseline (Table 1) is a 16 KB, 4-way, 32-byte-block cache
/// with a 1-cycle access; Section 4.4 also evaluates a 2-cycle base latency.
/// Mispredicted and sequential accesses pay one extra data-array probe
/// (Section 2.1), modelled by [`L1Config::extra_probe_latency`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct L1Config {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Block (line) size in bytes.
    pub block_bytes: usize,
    /// Number of ways per set.
    pub associativity: usize,
    /// Cycles for a first (or only) probe of the cache.
    pub base_latency: u64,
    /// Additional cycles for the corrective second probe after a
    /// way-misprediction, and for the serialized data probe of a sequential
    /// access.
    pub extra_probe_latency: u64,
    /// Number of entries in the way-prediction and selective-DM tables
    /// (the paper uses 1024).
    pub prediction_table_entries: usize,
    /// Number of entries in the victim list (the paper uses 16).
    pub victim_list_entries: usize,
}

impl L1Config {
    /// The paper's baseline L1 d-cache: 16 KB, 4-way, 32 B blocks, 1 cycle,
    /// 1024-entry prediction tables, 16-entry victim list.
    pub fn paper_dcache() -> Self {
        Self {
            size_bytes: 16 * 1024,
            block_bytes: 32,
            associativity: 4,
            base_latency: 1,
            extra_probe_latency: 1,
            prediction_table_entries: 1024,
            victim_list_entries: 16,
        }
    }

    /// The paper's baseline L1 i-cache: identical geometry to the d-cache,
    /// 1-cycle access, 1024-entry SAWP.
    pub fn paper_icache() -> Self {
        Self::paper_dcache()
    }

    /// Returns a copy with a different total size.
    pub fn with_size(mut self, size_bytes: usize) -> Self {
        self.size_bytes = size_bytes;
        self
    }

    /// Returns a copy with a different associativity.
    pub fn with_associativity(mut self, associativity: usize) -> Self {
        self.associativity = associativity;
        self
    }

    /// Returns a copy with a different base latency (Section 4.4 evaluates a
    /// 2-cycle d-cache).
    pub fn with_base_latency(mut self, cycles: u64) -> Self {
        self.base_latency = cycles;
        self
    }

    /// Returns a copy with a different prediction-table size.
    pub fn with_prediction_table_entries(mut self, entries: usize) -> Self {
        self.prediction_table_entries = entries;
        self
    }

    /// The cache geometry implied by the configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if the parameters are inconsistent.
    pub fn geometry(&self) -> Result<CacheGeometry, ConfigError> {
        if self.base_latency == 0 {
            return Err(ConfigError::ZeroLatency);
        }
        Ok(CacheGeometry::new(
            self.size_bytes,
            self.block_bytes,
            self.associativity,
        )?)
    }

    /// Latency of an access that needs a second data-array probe.
    pub fn mispredict_latency(&self) -> u64 {
        self.base_latency + self.extra_probe_latency
    }

    /// Latency of a sequential (tag-then-data) access.
    pub fn sequential_latency(&self) -> u64 {
        self.base_latency + self.extra_probe_latency
    }
}

impl Default for L1Config {
    fn default() -> Self {
        Self::paper_dcache()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_dcache_matches_table1() {
        let c = L1Config::paper_dcache();
        assert_eq!(c.size_bytes, 16 * 1024);
        assert_eq!(c.associativity, 4);
        assert_eq!(c.base_latency, 1);
        assert_eq!(c.prediction_table_entries, 1024);
        assert_eq!(c.victim_list_entries, 16);
        assert!(c.geometry().is_ok());
    }

    #[test]
    fn builder_methods_compose() {
        let c = L1Config::paper_dcache()
            .with_size(32 * 1024)
            .with_associativity(8)
            .with_base_latency(2);
        assert_eq!(c.size_bytes, 32 * 1024);
        assert_eq!(c.associativity, 8);
        assert_eq!(c.base_latency, 2);
        assert_eq!(c.mispredict_latency(), 3);
        assert_eq!(c.sequential_latency(), 3);
    }

    #[test]
    fn zero_latency_is_rejected() {
        let c = L1Config::paper_dcache().with_base_latency(0);
        assert_eq!(c.geometry().unwrap_err(), ConfigError::ZeroLatency);
    }

    #[test]
    fn bad_geometry_is_rejected() {
        let c = L1Config::paper_dcache().with_associativity(3);
        assert!(matches!(c.geometry(), Err(ConfigError::Geometry(_))));
    }

    #[test]
    fn error_display_is_informative() {
        let err = L1Config::paper_dcache()
            .with_base_latency(0)
            .geometry()
            .unwrap_err();
        assert!(err.to_string().contains("latency"));
    }
}
