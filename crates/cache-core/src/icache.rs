//! The energy-aware L1 instruction-cache controller.
//!
//! Section 2.3: i-cache way-prediction is folded into the fetch engine so it
//! adds no delay — the way of the *next* fetch is predicted while the
//! current fetch completes, using the BTB for taken branches, the SAWP for
//! sequential and not-taken fetches, and the RAS for returns. Fetches with
//! no prediction (BTB misses, branch-misprediction restarts) default to a
//! conventional parallel access.
//!
//! [`ICacheController`] specialises the shared [`AccessCore`] with the
//! fetch-engine prediction stack exposed as a [`WaySelect`] policy
//! ([`IWaySelect`]); the probe, latency, and energy accounting live in
//! [`crate::access`].

use wp_energy::{Energy, PredictionTableEnergy};
use wp_mem::{Placement, SetAssocCache, WayIndex};
use wp_predictors::{Btb, ReturnAddressStack, Sawp};

use crate::access::{
    AccessCore, CoreAccess, Observation, ProbeOutcome, Selection, WaySelect, WaySelection,
    WaySource,
};
use crate::config::{ConfigError, L1Config};
use crate::policy::ICachePolicy;
use crate::stats::ICacheStats;

/// Address type re-used from the memory substrate.
pub type Addr = wp_mem::Addr;

/// How the fetch engine arrived at the PC being fetched, which determines
/// the way-prediction source (Figure 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FetchKind {
    /// The next sequential block after the fetch at `prev_pc` (no taken
    /// branch in between): the SAWP supplies the way.
    Sequential {
        /// PC of the previous fetch.
        prev_pc: Addr,
    },
    /// The fall-through path of a predicted-not-taken branch at the end of
    /// the fetch at `prev_pc`: also a SAWP lookup.
    NotTakenBranch {
        /// PC of the previous fetch.
        prev_pc: Addr,
    },
    /// The target of a predicted-taken branch or call at `branch_pc`: the
    /// BTB supplies both target and way.
    TakenBranch {
        /// PC of the branch instruction.
        branch_pc: Addr,
    },
    /// The target of a call at `branch_pc`; identical to a taken branch for
    /// way-prediction, and additionally pushes `return_pc` (with its current
    /// i-cache way) onto the return address stack.
    Call {
        /// PC of the call instruction.
        branch_pc: Addr,
        /// Address execution resumes at after the callee returns.
        return_pc: Addr,
    },
    /// A function return: the RAS supplies the way it recorded at call time.
    Return,
    /// A fetch with no usable prediction — a branch-misprediction restart or
    /// any other pipeline redirect. Defaults to parallel access.
    Redirect,
}

/// How a fetch was serviced — the classes of Figure 10's breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IAccessClass {
    /// Way correctly predicted by the SAWP.
    SawpCorrect,
    /// Way correctly predicted by the branch-predictor structures (BTB or
    /// RAS).
    BtbCorrect,
    /// No prediction available: conventional parallel access.
    NoPrediction,
    /// Predicted way was wrong; a corrective second probe was needed.
    Mispredicted,
}

/// The result of one i-cache fetch access.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IAccessOutcome {
    /// True if the block was resident.
    pub hit: bool,
    /// L1 latency in cycles (misses additionally pay the L2/memory
    /// latency).
    pub latency: u64,
    /// Energy dissipated, in model units.
    pub energy: Energy,
    /// Breakdown class.
    pub class: IAccessClass,
    /// Number of data ways probed.
    pub ways_probed: usize,
    /// The way the block resides in after the access.
    pub way: WayIndex,
}

impl IAccessOutcome {
    /// True if the fetch hit in the L1 i-cache.
    pub fn is_hit(&self) -> bool {
        self.hit
    }

    /// True if the fetch missed.
    pub fn is_miss(&self) -> bool {
        !self.hit
    }
}

/// Per-fetch context handed to the fetch-engine way-selection policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FetchCtx {
    /// PC being fetched.
    pub pc: Addr,
    /// How the fetch engine produced the PC.
    pub kind: FetchKind,
}

/// Number of BTB entries (typical of the era's fetch engines). Public so
/// reference implementations (the `wp-oracle` conformance simulator) build
/// an identically sized fetch engine.
pub const BTB_ENTRIES: usize = 512;
/// Depth of the return address stack; public for the same reason.
pub const RAS_DEPTH: usize = 16;

/// The fetch-engine prediction stack: BTB, SAWP, and RAS with way fields,
/// driven by an [`ICachePolicy`].
#[derive(Debug, Clone)]
pub struct IWaySelect {
    policy: ICachePolicy,
    /// Energy of one way-field access, precomputed from the
    /// [`PredictionTableEnergy`] model at construction (the analytic model
    /// is too slow to evaluate per fetch).
    way_field_energy: Energy,
    btb: Btb,
    sawp: Sawp,
    ras: ReturnAddressStack,
}

impl IWaySelect {
    /// Builds the fetch-engine stack for `config` under `policy`.
    pub fn new(config: &L1Config, policy: ICachePolicy) -> Self {
        Self {
            policy,
            way_field_energy: PredictionTableEnergy::new(
                config.prediction_table_entries,
                Sawp::bits_per_entry(config.associativity),
            )
            .access_energy(),
            btb: Btb::new(BTB_ENTRIES),
            sawp: Sawp::new(config.prediction_table_entries),
            ras: ReturnAddressStack::new(RAS_DEPTH),
        }
    }

    /// The BTB's predicted target for a taken branch at `branch_pc`, if any.
    pub fn predicted_target(&mut self, branch_pc: Addr) -> Option<Addr> {
        self.btb.lookup(branch_pc).map(|e| e.target)
    }
}

impl WaySelect for IWaySelect {
    type Ctx = FetchCtx;

    fn select(&mut self, ctx: &FetchCtx) -> Selection {
        // The way prediction is produced by the previous access's
        // bookkeeping (BTB/SAWP/RAS), so it is available with no added
        // delay; its energy is charged with the way-field update in
        // [`Self::train`].
        if self.policy == ICachePolicy::Parallel {
            return Selection::parallel();
        }
        let (predicted, source) = match ctx.kind {
            FetchKind::Sequential { prev_pc } | FetchKind::NotTakenBranch { prev_pc } => {
                (self.sawp.predict(prev_pc), WaySource::Sawp)
            }
            FetchKind::TakenBranch { branch_pc } | FetchKind::Call { branch_pc, .. } => (
                self.btb.lookup(branch_pc).and_then(|e| e.way),
                WaySource::Btb,
            ),
            FetchKind::Return => (self.ras.pop().and_then(|(_, way)| way), WaySource::Ras),
            FetchKind::Redirect => (None, WaySource::None),
        };
        match predicted {
            Some(way) => Selection {
                choice: WaySelection::Predicted(way),
                source,
                energy: 0.0,
            },
            None => Selection::parallel(),
        }
    }

    fn train(&mut self, ctx: &FetchCtx, observed: Observation, cache: &SetAssocCache) -> Energy {
        // Train the structures with the way the block actually occupies now.
        // The BTB and RAS themselves exist in the conventional fetch engine
        // too (they supply targets); only the way fields and the SAWP are
        // part of the way-prediction mechanism, so only those incur the
        // prediction-energy overhead.
        let way_predicting = self.policy == ICachePolicy::WayPredict;
        let mut energy = 0.0;
        if way_predicting {
            energy += self.way_field_energy;
        }
        match ctx.kind {
            FetchKind::Sequential { prev_pc } | FetchKind::NotTakenBranch { prev_pc } => {
                if way_predicting {
                    self.sawp.update(prev_pc, observed.way);
                }
            }
            FetchKind::TakenBranch { branch_pc } => {
                self.btb
                    .update(branch_pc, ctx.pc, way_predicting.then_some(observed.way));
            }
            FetchKind::Call {
                branch_pc,
                return_pc,
            } => {
                self.btb
                    .update(branch_pc, ctx.pc, way_predicting.then_some(observed.way));
                let return_way = way_predicting.then(|| cache.probe(return_pc)).flatten();
                self.ras.push(return_pc, return_way);
            }
            FetchKind::Return | FetchKind::Redirect => {}
        }
        energy
    }
}

/// The energy-aware L1 i-cache with fetch-integrated way-prediction.
///
/// # Example
///
/// ```
/// use wp_cache::{FetchKind, ICacheController, ICachePolicy, L1Config};
///
/// # fn main() -> Result<(), wp_cache::ConfigError> {
/// let mut icache = ICacheController::new(L1Config::paper_icache(), ICachePolicy::WayPredict)?;
/// // A cold sequential fetch: no SAWP entry yet, so it is a parallel access.
/// let first = icache.fetch(0x40_0000, FetchKind::Redirect);
/// assert!(first.is_miss());
/// // The block that follows trains the SAWP...
/// let second = icache.fetch(0x40_0020, FetchKind::Sequential { prev_pc: 0x40_0000 });
/// // ...so fetching the same pair again probes a single predicted way.
/// icache.fetch(0x40_0000, FetchKind::Redirect);
/// let predicted = icache.fetch(0x40_0020, FetchKind::Sequential { prev_pc: 0x40_0000 });
/// assert!(predicted.is_hit());
/// assert_eq!(predicted.ways_probed, 1);
/// # let _ = (first, second);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ICacheController {
    core: AccessCore,
    policy: ICachePolicy,
    select: IWaySelect,
    stats: ICacheStats,
}

impl ICacheController {
    /// Builds a controller for `config` operating under `policy`.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if the configuration is inconsistent.
    pub fn new(config: L1Config, policy: ICachePolicy) -> Result<Self, ConfigError> {
        Ok(Self {
            core: AccessCore::new(config)?,
            policy,
            select: IWaySelect::new(&config, policy),
            stats: ICacheStats::default(),
        })
    }

    /// The configuration in use.
    pub fn config(&self) -> &L1Config {
        self.core.config()
    }

    /// The policy in use.
    pub fn policy(&self) -> ICachePolicy {
        self.policy
    }

    /// The energy model used to charge accesses.
    pub fn energy_model(&self) -> &wp_energy::CacheEnergyModel {
        self.core.energy_model()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &ICacheStats {
        &self.stats
    }

    /// Resets the statistics, keeping cache contents and predictor state.
    pub fn reset_stats(&mut self) {
        self.stats = ICacheStats::default();
    }

    /// The BTB's predicted target for a taken branch at `branch_pc`, if the
    /// fetch engine has one (used by the processor model to decide whether a
    /// taken branch causes a fetch bubble).
    pub fn predicted_target(&mut self, branch_pc: Addr) -> Option<Addr> {
        self.select.predicted_target(branch_pc)
    }

    /// Fetches the instruction block containing `pc`, with `kind` describing
    /// how the fetch engine produced the PC.
    ///
    /// On a miss the block is filled; the caller adds L2/memory latency.
    pub fn fetch(&mut self, pc: Addr, kind: FetchKind) -> IAccessOutcome {
        self.stats.fetches += 1;
        let ctx = FetchCtx { pc, kind };
        let access = self
            .core
            .read(&mut self.select, &ctx, pc, Placement::SetAssociative);
        if !access.result.hit {
            self.stats.fetch_misses += 1;
        }

        let class = classify(&access);
        match class {
            IAccessClass::SawpCorrect => self.stats.sawp_correct += 1,
            IAccessClass::BtbCorrect => {
                self.stats.btb_correct += 1;
                if access.selection.source == WaySource::Ras {
                    self.stats.ras_correct += 1;
                }
            }
            IAccessClass::NoPrediction => self.stats.no_prediction += 1,
            IAccessClass::Mispredicted => self.stats.mispredicted += 1,
        }
        self.stats.cache_energy += access.probe.energy;
        self.stats.prediction_energy += access.prediction_energy;

        IAccessOutcome {
            hit: access.result.hit,
            latency: access.probe.latency,
            energy: access.energy(),
            class,
            ways_probed: access.probe.ways_probed,
            way: access.result.way,
        }
    }
}

/// Maps a resolved probe onto the Figure 10 breakdown classes.
fn classify(access: &CoreAccess) -> IAccessClass {
    match access.probe.outcome {
        ProbeOutcome::Mispredicted => IAccessClass::Mispredicted,
        ProbeOutcome::SingleWay => {
            if access.selection.source.is_branch_structure() {
                IAccessClass::BtbCorrect
            } else {
                IAccessClass::SawpCorrect
            }
        }
        // Parallel (and the unused sequential probe) carry no prediction.
        ProbeOutcome::Parallel | ProbeOutcome::Sequential => IAccessClass::NoPrediction,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller(policy: ICachePolicy) -> ICacheController {
        ICacheController::new(L1Config::paper_icache(), policy).expect("valid config")
    }

    #[test]
    fn parallel_policy_never_predicts() {
        let mut c = controller(ICachePolicy::Parallel);
        for i in 0..10u64 {
            let out = c.fetch(
                0x40_0000 + i * 32,
                FetchKind::Sequential { prev_pc: 0x40_0000 },
            );
            assert_eq!(out.class, IAccessClass::NoPrediction);
            assert_eq!(out.ways_probed, 4);
        }
        assert_eq!(c.stats().no_prediction, 10);
    }

    #[test]
    fn sawp_learns_sequential_successor_ways() {
        let mut c = controller(ICachePolicy::WayPredict);
        let a = 0x40_0000;
        let b = 0x40_0020;
        c.fetch(a, FetchKind::Redirect);
        c.fetch(b, FetchKind::Sequential { prev_pc: a });
        // Second time around the SAWP predicts b's way.
        c.fetch(a, FetchKind::Redirect);
        let out = c.fetch(b, FetchKind::Sequential { prev_pc: a });
        assert_eq!(out.class, IAccessClass::SawpCorrect);
        assert_eq!(out.ways_probed, 1);
        assert_eq!(out.latency, 1);
    }

    #[test]
    fn btb_supplies_ways_for_taken_branches() {
        let mut c = controller(ICachePolicy::WayPredict);
        let branch_pc = 0x40_0104;
        let target = 0x40_2000;
        // First taken fetch trains the BTB (the fetch itself had no
        // prediction, so it is a parallel access).
        let first = c.fetch(target, FetchKind::TakenBranch { branch_pc });
        assert_eq!(first.class, IAccessClass::NoPrediction);
        let second = c.fetch(target, FetchKind::TakenBranch { branch_pc });
        assert_eq!(second.class, IAccessClass::BtbCorrect);
        assert_eq!(second.ways_probed, 1);
        assert_eq!(c.predicted_target(branch_pc), Some(target));
    }

    #[test]
    fn ras_supplies_ways_for_returns() {
        let mut c = controller(ICachePolicy::WayPredict);
        let call_pc = 0x40_0104;
        let callee = 0x40_3000;
        let return_pc = 0x40_0108;
        // Make the return block resident so the call can record its way.
        c.fetch(return_pc, FetchKind::Redirect);
        c.fetch(
            callee,
            FetchKind::Call {
                branch_pc: call_pc,
                return_pc,
            },
        );
        let ret = c.fetch(return_pc, FetchKind::Return);
        assert_eq!(ret.class, IAccessClass::BtbCorrect);
        assert_eq!(ret.ways_probed, 1);
        assert_eq!(c.stats().ras_correct, 1, "RAS subset counter");
        assert_eq!(c.stats().btb_correct, 1);
    }

    #[test]
    fn returns_without_a_stack_entry_default_to_parallel() {
        let mut c = controller(ICachePolicy::WayPredict);
        let out = c.fetch(0x40_0500, FetchKind::Return);
        assert_eq!(out.class, IAccessClass::NoPrediction);
    }

    #[test]
    fn redirects_default_to_parallel() {
        let mut c = controller(ICachePolicy::WayPredict);
        let out = c.fetch(0x40_0600, FetchKind::Redirect);
        assert_eq!(out.class, IAccessClass::NoPrediction);
        assert_eq!(out.ways_probed, 4);
    }

    #[test]
    fn misprediction_needs_second_probe() {
        let mut c = controller(ICachePolicy::WayPredict);
        let a = 0x40_0000;
        let b = 0x40_0020;
        // Train the SAWP: after a comes b in some way.
        c.fetch(a, FetchKind::Redirect);
        c.fetch(b, FetchKind::Sequential { prev_pc: a });
        // Evict b by filling its set with conflicting blocks fetched via
        // redirects, so b moves to a different way when it returns.
        let set_stride = 128 * 32;
        for i in 1..=4u64 {
            c.fetch(b + i * set_stride, FetchKind::Redirect);
        }
        c.fetch(a, FetchKind::Redirect);
        let out = c.fetch(b, FetchKind::Sequential { prev_pc: a });
        // b was evicted, so this is either a miss (single-way probe) or, if
        // refilled in a different way, a misprediction; both are legal here,
        // but a misprediction must cost an extra cycle and probe.
        if out.class == IAccessClass::Mispredicted {
            assert_eq!(out.ways_probed, 2);
            assert_eq!(out.latency, 2);
        } else {
            assert!(out.is_miss());
        }
    }

    #[test]
    fn way_predicted_fetches_save_energy_over_parallel() {
        let mut wp = controller(ICachePolicy::WayPredict);
        let mut par = controller(ICachePolicy::Parallel);
        // Warm both with a simple loop of sequential fetches.
        let pcs: Vec<Addr> = (0..16u64).map(|i| 0x40_0000 + i * 32).collect();
        for _ in 0..8 {
            let mut prev = *pcs.last().expect("non-empty");
            for &pc in &pcs {
                wp.fetch(pc, FetchKind::Sequential { prev_pc: prev });
                par.fetch(pc, FetchKind::Sequential { prev_pc: prev });
                prev = pc;
            }
        }
        let wp_energy = wp.stats().total_energy();
        let par_energy = par.stats().total_energy();
        assert!(
            wp_energy < 0.5 * par_energy,
            "way-predicted i-cache should save well over half the energy \
             ({wp_energy} vs {par_energy})"
        );
        assert!(wp.stats().way_prediction_accuracy() > 0.8);
    }

    #[test]
    fn breakdown_counts_cover_all_fetches() {
        let mut c = controller(ICachePolicy::WayPredict);
        let mut prev = 0x40_0000;
        for i in 0..200u64 {
            let pc = 0x40_0000 + (i % 50) * 32;
            let kind = match i % 5 {
                0 => FetchKind::Redirect,
                1 => FetchKind::TakenBranch {
                    branch_pc: prev + 4,
                },
                2 => FetchKind::Return,
                3 => FetchKind::NotTakenBranch { prev_pc: prev },
                _ => FetchKind::Sequential { prev_pc: prev },
            };
            c.fetch(pc, kind);
            prev = pc;
        }
        let s = c.stats();
        assert_eq!(
            s.sawp_correct + s.btb_correct + s.no_prediction + s.mispredicted,
            s.fetches
        );
    }

    #[test]
    fn invalid_config_is_rejected() {
        let bad = L1Config::paper_icache().with_base_latency(0);
        assert!(ICacheController::new(bad, ICachePolicy::WayPredict).is_err());
    }
}
