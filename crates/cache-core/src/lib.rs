//! Energy-aware L1 cache controllers with way-prediction and selective
//! direct-mapping — the core contribution of *Reducing Set-Associative Cache
//! Energy via Way-Prediction and Selective Direct-Mapping* (Powell et al.,
//! MICRO 2001).
//!
//! A conventional set-associative L1 probes **all** data ways in parallel
//! with the tag lookup and throws away every way but the matching one,
//! wasting roughly `(N-1)/N` of the data-array energy. The paper pinpoints
//! the matching way *before* the access:
//!
//! * **Way-prediction** (d-cache loads, i-cache fetches) predicts the way
//!   from the load PC, the XOR approximation of the address, or the fetch
//!   engine's BTB / SAWP / RAS, and probes only that way.
//! * **Selective direct-mapping** (d-cache loads) observes that 70–80 % of
//!   accesses are non-conflicting and maps them to their direct-mapping way
//!   outright — no way-prediction needed; only the conflicting minority
//!   falls back to parallel, sequential, or way-predicted access.
//!
//! [`DCacheController`] and [`ICacheController`] implement every design
//! option the paper evaluates (see [`DCachePolicy`] and [`ICachePolicy`]),
//! accounting per access for latency, energy (via [`wp_energy`]), the
//! Figure 6/8/10 access-breakdown classes, and prediction-structure
//! overheads.
//!
//! # Example
//!
//! ```
//! use wp_cache::{DCacheController, DCachePolicy, L1Config};
//!
//! # fn main() -> Result<(), wp_cache::ConfigError> {
//! let config = L1Config::paper_dcache(); // 16 KB, 4-way, 32 B, 1 cycle
//! let mut dcache = DCacheController::new(config, DCachePolicy::SelDmWayPredict)?;
//!
//! // A load issued by the pipeline: PC, address, XOR-approximate address.
//! let outcome = dcache.load(0x40_0100, 0x1000_0040, 0x1000_0040);
//! assert!(outcome.is_miss()); // cold cache; the block is filled on the way
//! let outcome = dcache.load(0x40_0100, 0x1000_0040, 0x1000_0040);
//! assert!(outcome.is_hit());
//! // The hit probed a single data way: far cheaper than a parallel read.
//! assert_eq!(outcome.ways_probed, 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod access;
mod config;
mod dcache;
mod icache;
mod lane;
mod policy;
mod stats;

pub use access::{
    AccessCore, CoreAccess, Observation, Probe, ProbeOutcome, Selection, WaySelect, WaySelection,
    WaySource,
};
pub use config::{ConfigError, L1Config};
pub use dcache::{DAccessClass, DAccessOutcome, DCacheController, DLoadCtx, DWaySelect};
pub use icache::{
    FetchCtx, FetchKind, IAccessClass, IAccessOutcome, ICacheController, IWaySelect, BTB_ENTRIES,
    RAS_DEPTH,
};
pub use lane::LaneDCache;
pub use policy::{kernels, DCachePolicy, DPolicyKernel, ICachePolicy};
pub use stats::{DCacheStats, ICacheStats};
