//! Per-controller statistics: the access-breakdown classes of Figures 6, 7,
//! 8 and 10, prediction accuracies, and energy totals.

use wp_energy::Energy;

/// Statistics accumulated by a [`crate::DCacheController`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DCacheStats {
    /// Loads serviced.
    pub loads: u64,
    /// Loads that missed in the L1.
    pub load_misses: u64,
    /// Stores serviced.
    pub stores: u64,
    /// Stores that missed in the L1.
    pub store_misses: u64,
    /// Blocks evicted from the L1.
    pub evictions: u64,

    // ---- Figure 6/8 access breakdown (loads only) ----
    /// Loads that probed only their direct-mapping way and found the block
    /// there (or missed outright while predicted direct-mapped).
    pub direct_mapped_accesses: u64,
    /// Loads that performed a conventional parallel probe.
    pub parallel_accesses: u64,
    /// Loads that probed a single predicted way and were correct (or missed
    /// outright).
    pub way_predicted_accesses: u64,
    /// Loads serviced by a sequential (tag-then-data) access.
    pub sequential_accesses: u64,
    /// Loads that probed the wrong way (or were wrongly predicted
    /// direct-mapped) and needed a corrective second probe.
    pub mispredicted_accesses: u64,

    // ---- predictor bookkeeping ----
    /// Way predictions attempted (a trained table entry existed).
    pub way_predictions: u64,
    /// Way predictions that matched the way the load actually hit in.
    pub way_predictions_correct: u64,
    /// Loads the selective-DM table predicted as non-conflicting
    /// (direct-mapped).
    pub seldm_predicted_dm: u64,
    /// Of those, loads that did hit in (or miss into) their direct-mapping
    /// way.
    pub seldm_predicted_dm_correct: u64,
    /// Blocks the victim list flagged as conflicting.
    pub conflicting_blocks_flagged: u64,

    // ---- outcome-class coverage counters ----
    /// Loads that probed a single way and *hit* there on the first probe
    /// (the first-hit subset of the way-predicted / direct-mapped classes;
    /// misses-while-predicted are excluded).
    pub single_way_load_hits: u64,
    /// Loads under a selective-DM policy whose per-PC counter predicted the
    /// conflicting (set-associative) side and fell back to the configured
    /// probe scheme.
    pub seldm_predicted_sa: u64,
    /// Loads under a selective-DM policy whose *block* was on the victim
    /// list at placement time (per-block conflict signal, as opposed to the
    /// per-PC `seldm_predicted_sa`).
    pub victim_list_hits: u64,
    /// Evictions that wrote back a dirty block.
    pub dirty_evictions: u64,

    // ---- energy ----
    /// Energy dissipated in the cache arrays (tag + data + refills), in
    /// model units.
    pub cache_energy: Energy,
    /// Energy dissipated in the prediction structures (way table,
    /// selective-DM table, victim list), in model units.
    pub prediction_energy: Energy,
}

impl DCacheStats {
    /// Total L1 d-cache accesses.
    pub fn accesses(&self) -> u64 {
        self.loads + self.stores
    }

    /// Total misses.
    pub fn misses(&self) -> u64 {
        self.load_misses + self.store_misses
    }

    /// Overall miss rate as a percentage (the Table 4 quantity).
    pub fn miss_rate_percent(&self) -> f64 {
        percent(self.misses(), self.accesses())
    }

    /// Load miss rate as a percentage.
    pub fn load_miss_rate_percent(&self) -> f64 {
        percent(self.load_misses, self.loads)
    }

    /// Way-prediction accuracy in `[0, 1]` (predictions that matched).
    pub fn way_prediction_accuracy(&self) -> f64 {
        fraction(self.way_predictions_correct, self.way_predictions)
    }

    /// Fraction of loads the selective-DM framework correctly handled as
    /// direct-mapped (the ~77 % the paper reports).
    pub fn seldm_dm_fraction(&self) -> f64 {
        fraction(self.seldm_predicted_dm_correct, self.loads)
    }

    /// Fraction of loads in each Figure 6 breakdown class, in the order
    /// (direct-mapped, parallel, way-predicted, sequential, mispredicted).
    pub fn access_breakdown(&self) -> [f64; 5] {
        let n = self.loads;
        [
            fraction(self.direct_mapped_accesses, n),
            fraction(self.parallel_accesses, n),
            fraction(self.way_predicted_accesses, n),
            fraction(self.sequential_accesses, n),
            fraction(self.mispredicted_accesses, n),
        ]
    }

    /// Total energy charged to the d-cache, including prediction-structure
    /// overhead.
    pub fn total_energy(&self) -> Energy {
        self.cache_energy + self.prediction_energy
    }
}

/// Statistics accumulated by an [`crate::ICacheController`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ICacheStats {
    /// Fetch accesses serviced.
    pub fetches: u64,
    /// Fetches that missed in the L1 i-cache.
    pub fetch_misses: u64,

    // ---- Figure 10 access breakdown ----
    /// Fetches whose way was correctly predicted by the SAWP.
    pub sawp_correct: u64,
    /// Fetches whose way was correctly predicted by the branch-predictor
    /// structures (BTB or RAS).
    pub btb_correct: u64,
    /// The subset of [`ICacheStats::btb_correct`] supplied by the return
    /// address stack (coverage counter; not part of the Figure 10 classes).
    pub ras_correct: u64,
    /// Fetches with no prediction available (BTB miss, misprediction
    /// restart): conventional parallel access.
    pub no_prediction: u64,
    /// Fetches whose predicted way was wrong, needing a second probe.
    pub mispredicted: u64,

    // ---- energy ----
    /// Energy dissipated in the i-cache arrays.
    pub cache_energy: Energy,
    /// Energy overhead of the way fields added to the BTB, SAWP, and RAS.
    pub prediction_energy: Energy,
}

impl ICacheStats {
    /// Miss rate as a percentage.
    pub fn miss_rate_percent(&self) -> f64 {
        percent(self.fetch_misses, self.fetches)
    }

    /// Fraction of fetches whose way was predicted (by any source) and
    /// correct.
    pub fn way_prediction_accuracy(&self) -> f64 {
        let predicted = self.sawp_correct + self.btb_correct + self.mispredicted;
        fraction(self.sawp_correct + self.btb_correct, predicted)
    }

    /// Fraction of all fetches that probed a single way and were correct.
    pub fn single_way_fraction(&self) -> f64 {
        fraction(self.sawp_correct + self.btb_correct, self.fetches)
    }

    /// Fraction of fetches in each Figure 10 breakdown class, in the order
    /// (SAWP correct, BTB/RAS correct, no prediction, mispredicted).
    pub fn access_breakdown(&self) -> [f64; 4] {
        let n = self.fetches;
        [
            fraction(self.sawp_correct, n),
            fraction(self.btb_correct, n),
            fraction(self.no_prediction, n),
            fraction(self.mispredicted, n),
        ]
    }

    /// Total energy charged to the i-cache, including way-field overhead.
    pub fn total_energy(&self) -> Energy {
        self.cache_energy + self.prediction_energy
    }
}

fn fraction(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

fn percent(num: u64, den: u64) -> f64 {
    fraction(num, den) * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_have_zero_rates() {
        let d = DCacheStats::default();
        assert_eq!(d.miss_rate_percent(), 0.0);
        assert_eq!(d.way_prediction_accuracy(), 0.0);
        assert_eq!(d.access_breakdown(), [0.0; 5]);
        let i = ICacheStats::default();
        assert_eq!(i.miss_rate_percent(), 0.0);
        assert_eq!(i.access_breakdown(), [0.0; 4]);
    }

    #[test]
    fn dcache_derived_metrics_follow_counts() {
        let s = DCacheStats {
            loads: 100,
            load_misses: 5,
            stores: 50,
            store_misses: 5,
            direct_mapped_accesses: 70,
            parallel_accesses: 10,
            way_predicted_accesses: 10,
            sequential_accesses: 5,
            mispredicted_accesses: 5,
            way_predictions: 20,
            way_predictions_correct: 15,
            seldm_predicted_dm: 80,
            seldm_predicted_dm_correct: 70,
            cache_energy: 100.0,
            prediction_energy: 1.0,
            ..DCacheStats::default()
        };
        assert!((s.miss_rate_percent() - 100.0 * 10.0 / 150.0).abs() < 1e-9);
        assert!((s.way_prediction_accuracy() - 0.75).abs() < 1e-12);
        assert!((s.seldm_dm_fraction() - 0.70).abs() < 1e-12);
        let breakdown = s.access_breakdown();
        assert!((breakdown.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert_eq!(s.total_energy(), 101.0);
    }

    #[test]
    fn icache_accuracy_ignores_unpredicted_fetches() {
        let s = ICacheStats {
            fetches: 100,
            fetch_misses: 2,
            sawp_correct: 60,
            btb_correct: 30,
            no_prediction: 5,
            mispredicted: 5,
            cache_energy: 10.0,
            prediction_energy: 0.5,
            ..ICacheStats::default()
        };
        assert!((s.way_prediction_accuracy() - 90.0 / 95.0).abs() < 1e-12);
        assert!((s.single_way_fraction() - 0.9).abs() < 1e-12);
        assert_eq!(s.total_energy(), 10.5);
    }
}
