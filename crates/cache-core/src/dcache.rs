//! The energy-aware L1 data-cache controller.
//!
//! [`DCacheController`] specialises the shared [`AccessCore`] with the
//! paper's d-side prediction stack — the selective-DM table, the victim
//! list, and the PC/XOR way-prediction tables — exposed to the core as a
//! [`WaySelect`] policy ([`DWaySelect`]). The probe, latency, and energy
//! accounting all live in [`crate::access`]; this module only decides *how*
//! to probe and keeps the Figure 6/7/8 statistics.

use wp_energy::{Energy, PredictionTableEnergy};
use wp_mem::{Placement, SetAssocCache, WayIndex};
use wp_predictors::{
    MappingPrediction, PcWayPredictor, SelDmPredictor, VictimList, XorWayPredictor,
};

use crate::access::{
    AccessCore, Observation, ProbeOutcome, Selection, WaySelect, WaySelection, WaySource,
};
use crate::config::{ConfigError, L1Config};
use crate::policy::{DCachePolicy, DPolicyKernel};
use crate::stats::DCacheStats;

use std::marker::PhantomData;

/// Address type re-used from the memory substrate.
pub type Addr = wp_mem::Addr;

/// How a load was serviced — the classes of the paper's access-breakdown
/// graphs (Figures 6, 7 and 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DAccessClass {
    /// Probed only the direct-mapping way (selective-DM, non-conflicting).
    DirectMapped,
    /// Conventional parallel probe of all ways.
    Parallel,
    /// Probed a single predicted way.
    WayPredicted,
    /// Serialized tag-then-data access.
    Sequential,
    /// Wrong single-way probe (wrong way, or wrongly predicted
    /// direct-mapped); needed a corrective second probe.
    Mispredicted,
    /// A store (never predicted: tag first, then the matching way).
    Write,
}

/// The result of one d-cache access.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DAccessOutcome {
    /// True if the block was resident in the L1.
    pub hit: bool,
    /// L1 latency in cycles (misses additionally pay the L2/memory latency,
    /// which the caller obtains from [`wp_mem::MemoryHierarchy`]).
    pub latency: u64,
    /// Energy dissipated in the cache and prediction structures for this
    /// access, in model units.
    pub energy: Energy,
    /// Breakdown class of the access.
    pub class: DAccessClass,
    /// Number of data ways probed (0 for a sequential access that missed in
    /// the tag array before touching the data array).
    pub ways_probed: usize,
    /// The way the block resides in after the access (the hit way, or the
    /// way filled on a miss).
    pub way: WayIndex,
}

impl Default for DAccessOutcome {
    /// A free parallel miss of way 0. Exists so lane-batched callers can
    /// size per-lane outcome buffers without an `Option` per slot; every
    /// slot is overwritten before it is read.
    fn default() -> Self {
        Self {
            hit: false,
            latency: 0,
            energy: 0.0,
            class: DAccessClass::Parallel,
            ways_probed: 0,
            way: 0,
        }
    }
}

impl DAccessOutcome {
    /// True if the access hit in the L1.
    pub fn is_hit(&self) -> bool {
        self.hit
    }

    /// True if the access missed and the block was filled from below.
    pub fn is_miss(&self) -> bool {
        !self.hit
    }
}

/// Per-load context handed to the d-side way-selection policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DLoadCtx {
    /// PC of the load instruction.
    pub pc: Addr,
    /// XOR approximation of the effective address.
    pub approx_addr: Addr,
    /// The load's direct-mapping way.
    pub dm_way: WayIndex,
}

/// The d-cache prediction stack: selective-DM table, victim list, and the
/// PC/XOR way-prediction tables, driven by a [`DCachePolicy`].
#[derive(Debug, Clone)]
pub struct DWaySelect {
    policy: DCachePolicy,
    /// Energy of one prediction-table access, precomputed from the
    /// [`PredictionTableEnergy`] model at construction (the model's
    /// analytic evaluation is too slow for the per-access hot path).
    table_energy: Energy,
    /// Energy of one victim-list access, precomputed likewise.
    victim_energy: Energy,
    /// The selective-DM prediction made by the latest [`WaySelect::select`]
    /// call, reused by [`WaySelect::train`] on the same access so the
    /// counter table is read once per load (the counters are only mutated
    /// by `train` itself, after this value is consumed).
    last_seldm: MappingPrediction,
    seldm: SelDmPredictor,
    victims: VictimList,
    pc_way: PcWayPredictor,
    xor_way: XorWayPredictor,
}

impl DWaySelect {
    /// Builds the prediction stack for `config` under `policy`.
    pub fn new(config: &L1Config, policy: DCachePolicy) -> Self {
        let way_bits = PcWayPredictor::bits_per_entry(config.associativity);
        Self {
            policy,
            table_energy: PredictionTableEnergy::new(
                config.prediction_table_entries,
                // Selective-DM counter (2 bits) plus the optional way field.
                SelDmPredictor::BITS_PER_ENTRY + way_bits,
            )
            .access_energy(),
            victim_energy: PredictionTableEnergy::new(
                config.victim_list_entries.next_power_of_two().max(2),
                32,
            )
            .access_energy(),
            last_seldm: MappingPrediction::SetAssociative,
            seldm: SelDmPredictor::new(config.prediction_table_entries),
            victims: VictimList::new(config.victim_list_entries, 2),
            pc_way: PcWayPredictor::new(config.prediction_table_entries),
            xor_way: XorWayPredictor::new(config.prediction_table_entries, config.block_bytes),
        }
    }

    /// Placement used when a miss fills the cache: selective-DM policies
    /// place non-conflicting blocks (per the victim list) in their
    /// direct-mapping way and conflicting blocks in their set-associative
    /// position; every other policy uses conventional LRU placement.
    #[inline]
    pub fn placement(&self, block_addr: wp_mem::BlockAddr) -> Placement {
        self.placement_policy(self.policy, block_addr)
    }

    /// [`DWaySelect::placement`] with the policy supplied by the caller —
    /// the monomorphized kernels pass a compile-time constant here, so the
    /// selective-DM test folds away.
    #[inline(always)]
    pub(crate) fn placement_policy(
        &self,
        policy: DCachePolicy,
        block_addr: wp_mem::BlockAddr,
    ) -> Placement {
        if !policy.uses_selective_dm() || self.victims.is_conflicting(block_addr) {
            Placement::SetAssociative
        } else {
            Placement::DirectMapped
        }
    }

    /// Records an eviction in the victim list (selective-DM only). Returns
    /// whether the block was newly flagged as conflicting, and the victim
    /// list energy charged.
    pub fn note_eviction(&mut self, block_addr: wp_mem::BlockAddr) -> (bool, Energy) {
        if self.policy.uses_selective_dm() {
            (self.victims.record_eviction(block_addr), self.victim_energy)
        } else {
            (false, 0.0)
        }
    }
}

impl WaySelect for DWaySelect {
    type Ctx = DLoadCtx;

    #[inline]
    fn select(&mut self, ctx: &DLoadCtx) -> Selection {
        self.select_policy(self.policy, ctx)
    }

    #[inline]
    fn train(&mut self, ctx: &DLoadCtx, observed: Observation, _cache: &SetAssocCache) -> Energy {
        self.train_policy(self.policy, ctx, observed)
    }
}

impl DWaySelect {
    /// [`WaySelect::select`] with the policy supplied by the caller instead
    /// of read from `self`: the monomorphized kernels pass
    /// [`crate::DPolicyKernel::POLICY`], a compile-time constant, so the
    /// policy `match` folds to the one live arm.
    #[inline(always)]
    pub(crate) fn select_policy(&mut self, policy: DCachePolicy, ctx: &DLoadCtx) -> Selection {
        let table = self.table_energy;
        match policy {
            DCachePolicy::Parallel => Selection::parallel(),
            DCachePolicy::Sequential => Selection {
                choice: WaySelection::Sequential,
                source: WaySource::None,
                energy: 0.0,
            },
            DCachePolicy::PerfectWayPredict => Selection {
                choice: WaySelection::Oracle,
                source: WaySource::Oracle,
                energy: 0.0,
            },
            DCachePolicy::WayPredictPc => Self::from_way_table(self.pc_way.predict(ctx.pc), table),
            DCachePolicy::WayPredictXor => {
                Self::from_way_table(self.xor_way.predict(ctx.approx_addr), table)
            }
            DCachePolicy::SelDmParallel
            | DCachePolicy::SelDmWayPredict
            | DCachePolicy::SelDmSequential => {
                self.last_seldm = self.seldm.predict(ctx.pc);
                if self.last_seldm == MappingPrediction::DirectMapped {
                    return Selection {
                        choice: WaySelection::DirectMapped(ctx.dm_way),
                        source: WaySource::SelectiveDm,
                        energy: table,
                    };
                }
                // Predicted conflicting: fall back to the configured scheme.
                match policy {
                    DCachePolicy::SelDmParallel => Selection {
                        choice: WaySelection::Parallel,
                        source: WaySource::None,
                        energy: table,
                    },
                    DCachePolicy::SelDmSequential => Selection {
                        choice: WaySelection::Sequential,
                        source: WaySource::None,
                        energy: table,
                    },
                    _ => {
                        let mut fallback = Self::from_way_table(self.pc_way.predict(ctx.pc), table);
                        fallback.energy += table;
                        fallback
                    }
                }
            }
        }
    }

    /// [`WaySelect::train`] with the policy supplied by the caller; see
    /// [`DWaySelect::select_policy`]. The d-side stack never needs the tag
    /// store for training (unlike the i-side RAS), so no cache reference is
    /// taken — which is what lets the lane-batched path train per-lane
    /// policies against one shared [`wp_mem::LaneTagStore`].
    #[inline(always)]
    pub(crate) fn train_policy(
        &mut self,
        policy: DCachePolicy,
        ctx: &DLoadCtx,
        observed: Observation,
    ) -> Energy {
        // Way-table training with the way the block actually occupies now.
        match policy {
            DCachePolicy::WayPredictPc => self.pc_way.update(ctx.pc, observed.way),
            DCachePolicy::WayPredictXor => self.xor_way.update(ctx.approx_addr, observed.way),
            DCachePolicy::SelDmWayPredict
                if self.last_seldm == MappingPrediction::SetAssociative =>
            {
                self.pc_way.update(ctx.pc, observed.way)
            }
            _ => {}
        }
        // Train the selective-DM counter on read hits, whatever handled the
        // access (Section 2.2.2).
        if policy.uses_selective_dm() && observed.hit {
            if observed.in_direct_mapped_way {
                self.seldm.record_direct_mapped_hit(ctx.pc);
            } else {
                self.seldm.record_set_associative_hit(ctx.pc);
            }
        }
        0.0
    }
}

impl DWaySelect {
    /// A selection from a way-table lookup: probe the predicted way, or all
    /// ways when the entry is untrained.
    fn from_way_table(predicted: Option<WayIndex>, energy: Energy) -> Selection {
        Selection {
            choice: predicted.map_or(WaySelection::Parallel, WaySelection::Predicted),
            source: WaySource::WayTable,
            energy,
        }
    }
}

/// [`DWaySelect`] viewed through a compile-time policy: the [`WaySelect`]
/// impl forwards to the `*_policy` methods with [`DPolicyKernel::POLICY`],
/// so inside a monomorphized kernel every policy `match` folds to one arm.
struct KernelSelect<'a, K: DPolicyKernel>(&'a mut DWaySelect, PhantomData<K>);

impl<K: DPolicyKernel> WaySelect for KernelSelect<'_, K> {
    type Ctx = DLoadCtx;

    #[inline(always)]
    fn select(&mut self, ctx: &DLoadCtx) -> Selection {
        self.0.select_policy(K::POLICY, ctx)
    }

    #[inline(always)]
    fn train(&mut self, ctx: &DLoadCtx, observed: Observation, _cache: &SetAssocCache) -> Energy {
        self.0.train_policy(K::POLICY, ctx, observed)
    }
}

/// The energy-aware L1 d-cache.
///
/// See the crate-level documentation for an example.
#[derive(Debug, Clone)]
pub struct DCacheController {
    core: AccessCore,
    policy: DCachePolicy,
    select: DWaySelect,
    stats: DCacheStats,
}

impl DCacheController {
    /// Builds a controller for `config` operating under `policy`.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if the configuration is inconsistent.
    pub fn new(config: L1Config, policy: DCachePolicy) -> Result<Self, ConfigError> {
        Ok(Self {
            core: AccessCore::new(config)?,
            policy,
            select: DWaySelect::new(&config, policy),
            stats: DCacheStats::default(),
        })
    }

    /// The configuration in use.
    pub fn config(&self) -> &L1Config {
        self.core.config()
    }

    /// The access policy in use.
    pub fn policy(&self) -> DCachePolicy {
        self.policy
    }

    /// The energy model used to charge accesses.
    pub fn energy_model(&self) -> &wp_energy::CacheEnergyModel {
        self.core.energy_model()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &DCacheStats {
        &self.stats
    }

    /// Resets the statistics (cache contents and predictor state are kept,
    /// mirroring a warm-up / measurement split).
    pub fn reset_stats(&mut self) {
        self.stats = DCacheStats::default();
    }

    /// Miss rate over all accesses so far, as a percentage.
    pub fn miss_rate_percent(&self) -> f64 {
        self.stats.miss_rate_percent()
    }

    /// Services a load issued at `pc` for effective address `addr`, with
    /// `approx_addr` the XOR approximation of the address available early in
    /// the pipeline (pass `addr` when modelling a perfect approximation).
    ///
    /// On a miss the block is filled (write-allocate, placement decided by
    /// the selective-DM victim list where applicable); the caller is
    /// responsible for adding the L2/memory latency to the returned L1
    /// latency.
    ///
    /// Dispatches once to the monomorphized kernel matching the controller's
    /// policy; callers that hold the policy statically (the processor's
    /// per-policy run loops) use [`DCacheController::load_kernel`] directly
    /// and skip even this one dispatch.
    #[inline]
    pub fn load(&mut self, pc: Addr, addr: Addr, approx_addr: Addr) -> DAccessOutcome {
        crate::with_dpolicy_kernel!(self.policy, K => self.load_impl::<K>(pc, addr, approx_addr))
    }

    /// [`DCacheController::load`] through the monomorphized kernel `K`:
    /// straight-line code for exactly one policy, with every policy `match`
    /// (way selection, training, fill placement) folded at compile time.
    ///
    /// # Panics
    ///
    /// Debug-asserts that `K::POLICY` matches the controller's runtime
    /// policy; in release builds a mismatched kernel silently accounts the
    /// access under `K::POLICY`'s rules.
    #[inline]
    pub fn load_kernel<K: DPolicyKernel>(
        &mut self,
        pc: Addr,
        addr: Addr,
        approx_addr: Addr,
    ) -> DAccessOutcome {
        debug_assert_eq!(K::POLICY, self.policy);
        self.load_impl::<K>(pc, addr, approx_addr)
    }

    /// The shared load body, generic over the compile-time policy.
    #[inline(always)]
    fn load_impl<K: DPolicyKernel>(
        &mut self,
        pc: Addr,
        addr: Addr,
        approx_addr: Addr,
    ) -> DAccessOutcome {
        self.stats.loads += 1;
        let geometry = self.core.cache().geometry();
        let ctx = DLoadCtx {
            pc,
            approx_addr,
            dm_way: geometry.direct_mapped_way(addr),
        };
        let block_addr = geometry.block_addr(addr);
        let placement = self.select.placement_policy(K::POLICY, block_addr);
        account_placement(&mut self.stats, K::POLICY, placement);

        let mut select = KernelSelect::<K>(&mut self.select, PhantomData);
        let access = self.core.read(&mut select, &ctx, addr, placement);
        if !access.result.hit {
            self.stats.load_misses += 1;
        }
        account_eviction(&mut self.stats, &mut self.select, access.result.evicted);
        account_selection(
            &mut self.stats,
            K::POLICY,
            access.probe.outcome,
            &access.selection,
            access.result.hit,
        );

        let class = classify(access.probe.outcome, access.selection.choice);
        account_load_class(&mut self.stats, class);
        self.stats.cache_energy += access.probe.energy;
        self.stats.prediction_energy += access.prediction_energy;

        DAccessOutcome {
            hit: access.result.hit,
            latency: access.probe.latency,
            energy: access.energy(),
            class,
            ways_probed: access.probe.ways_probed,
            way: access.result.way,
        }
    }

    /// Services a store issued at `pc` for `addr`.
    ///
    /// Stores check the tag array first and then write only the matching
    /// way, in every policy (end of Section 2.1), so they neither waste
    /// energy nor use prediction. Write misses allocate the block.
    #[inline]
    pub fn store(&mut self, _pc: Addr, addr: Addr) -> DAccessOutcome {
        self.stats.stores += 1;
        let block_addr = self.core.cache().geometry().block_addr(addr);
        let placement = self.select.placement(block_addr);
        let access = self.core.write(addr, placement);
        if !access.result.hit {
            self.stats.store_misses += 1;
        }
        account_eviction(&mut self.stats, &mut self.select, access.result.evicted);
        self.stats.cache_energy += access.probe.energy;

        DAccessOutcome {
            hit: access.result.hit,
            latency: access.probe.latency,
            energy: access.probe.energy,
            class: DAccessClass::Write,
            ways_probed: access.probe.ways_probed,
            way: access.result.way,
        }
    }
}

/// Records an eviction in the victim list and the statistics. Shared with
/// the lane-batched path (`crate::lane`), which carries a [`DWaySelect`] and
/// a [`DCacheStats`] per lane but no [`DCacheController`].
#[inline]
pub(crate) fn account_eviction(
    stats: &mut DCacheStats,
    select: &mut DWaySelect,
    evicted: Option<wp_mem::CacheLine>,
) {
    if let Some(line) = evicted {
        stats.evictions += 1;
        if line.dirty {
            stats.dirty_evictions += 1;
        }
        let (flagged, energy) = select.note_eviction(line.block_addr);
        stats.prediction_energy += energy;
        if flagged {
            stats.conflicting_blocks_flagged += 1;
        }
    }
}

/// Victim-list coverage accounting at fill-placement time: under a
/// selective-DM policy, a set-associative placement means the victim list
/// flagged the block as conflicting. Shared with the lane-batched path.
#[inline]
pub(crate) fn account_placement(
    stats: &mut DCacheStats,
    policy: DCachePolicy,
    placement: Placement,
) {
    if policy.uses_selective_dm() && placement == Placement::SetAssociative {
        stats.victim_list_hits += 1;
    }
}

/// Predictor bookkeeping derived from the selection and its outcome; shared
/// with the lane-batched path like [`account_eviction`].
#[inline]
pub(crate) fn account_selection(
    stats: &mut DCacheStats,
    policy: DCachePolicy,
    outcome: ProbeOutcome,
    selection: &Selection,
    hit: bool,
) {
    let single_way_correct = outcome == ProbeOutcome::SingleWay;
    if single_way_correct && hit {
        stats.single_way_load_hits += 1;
    }
    if policy.uses_selective_dm() && !matches!(selection.choice, WaySelection::DirectMapped(_)) {
        stats.seldm_predicted_sa += 1;
    }
    match selection.choice {
        WaySelection::Predicted(_) if selection.source == WaySource::WayTable => {
            stats.way_predictions += 1;
            if single_way_correct && hit {
                stats.way_predictions_correct += 1;
            }
        }
        WaySelection::DirectMapped(_) => {
            stats.seldm_predicted_dm += 1;
            if single_way_correct {
                stats.seldm_predicted_dm_correct += 1;
            }
        }
        _ => {}
    }
}

/// Figure 6 breakdown accounting; shared with the lane-batched path.
#[inline]
pub(crate) fn account_load_class(stats: &mut DCacheStats, class: DAccessClass) {
    match class {
        DAccessClass::DirectMapped => stats.direct_mapped_accesses += 1,
        DAccessClass::Parallel => stats.parallel_accesses += 1,
        DAccessClass::WayPredicted => stats.way_predicted_accesses += 1,
        DAccessClass::Sequential => stats.sequential_accesses += 1,
        DAccessClass::Mispredicted => stats.mispredicted_accesses += 1,
        DAccessClass::Write => {}
    }
}

/// Maps a resolved probe onto the Figure 6 breakdown classes.
#[inline]
pub(crate) fn classify(outcome: ProbeOutcome, choice: WaySelection) -> DAccessClass {
    match outcome {
        ProbeOutcome::Parallel => DAccessClass::Parallel,
        ProbeOutcome::Sequential => DAccessClass::Sequential,
        ProbeOutcome::Mispredicted => DAccessClass::Mispredicted,
        ProbeOutcome::SingleWay => match choice {
            WaySelection::DirectMapped(_) => DAccessClass::DirectMapped,
            _ => DAccessClass::WayPredicted,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller(policy: DCachePolicy) -> DCacheController {
        DCacheController::new(L1Config::paper_dcache(), policy).expect("valid config")
    }

    /// Addresses that map to the same set of the paper's 16 KB 4-way cache
    /// and, for consecutive `i`, to different direct-mapping ways.
    fn same_set_addr(i: u64) -> Addr {
        0x10_0000 + i * (128 * 32)
    }

    #[test]
    fn parallel_policy_probes_all_ways() {
        let mut c = controller(DCachePolicy::Parallel);
        let out = c.load(0x400, 0x8000, 0x8000);
        assert!(out.is_miss());
        assert_eq!(out.ways_probed, 4);
        let out = c.load(0x400, 0x8000, 0x8000);
        assert!(out.is_hit());
        assert_eq!(out.ways_probed, 4);
        assert_eq!(out.latency, 1);
        assert_eq!(out.class, DAccessClass::Parallel);
    }

    #[test]
    fn sequential_policy_pays_latency_but_probes_one_way() {
        let mut c = controller(DCachePolicy::Sequential);
        c.load(0x400, 0x8000, 0x8000);
        let out = c.load(0x400, 0x8000, 0x8000);
        assert!(out.is_hit());
        assert_eq!(out.ways_probed, 1);
        assert_eq!(out.latency, 2);
        assert_eq!(out.class, DAccessClass::Sequential);
        // A sequential hit costs far less energy than a parallel hit.
        let mut p = controller(DCachePolicy::Parallel);
        p.load(0x400, 0x8000, 0x8000);
        let parallel_hit = p.load(0x400, 0x8000, 0x8000);
        assert!(out.energy < 0.35 * parallel_hit.energy);
    }

    #[test]
    fn pc_way_prediction_learns_and_saves_energy() {
        let mut c = controller(DCachePolicy::WayPredictPc);
        // Cold: no prediction -> parallel.
        let first = c.load(0x400, 0x8000, 0x8000);
        assert_eq!(first.class, DAccessClass::Parallel);
        // Trained: the same PC re-accesses the same block.
        let second = c.load(0x400, 0x8000, 0x8000);
        assert_eq!(second.class, DAccessClass::WayPredicted);
        assert_eq!(second.ways_probed, 1);
        assert_eq!(second.latency, 1);
        assert!(c.stats().way_prediction_accuracy() > 0.99);
    }

    #[test]
    fn way_misprediction_costs_extra_probe_and_cycle() {
        let mut c = controller(DCachePolicy::WayPredictPc);
        // Train the PC on a block in way 0 of set 0, then move it to a
        // different block that lands in a different way.
        let a = same_set_addr(0);
        let b = same_set_addr(1);
        c.load(0x400, a, a);
        c.load(0x400, a, a);
        c.load(0x900, b, b); // bring b in (different PC)
        let out = c.load(0x400, b, b); // PC 0x400 still predicts a's way
        assert!(out.is_hit());
        assert_eq!(out.class, DAccessClass::Mispredicted);
        assert_eq!(out.ways_probed, 2);
        assert_eq!(out.latency, 2);
    }

    #[test]
    fn xor_prediction_uses_the_approximate_address() {
        let mut c = controller(DCachePolicy::WayPredictXor);
        let addr = 0x8000;
        c.load(0x400, addr, addr);
        // A wrong approximation indexes a cold entry: parallel access.
        let wrong = c.load(0x400, addr, addr + 0x40);
        assert_eq!(wrong.class, DAccessClass::Parallel);
        // A correct approximation finds the trained entry.
        let right = c.load(0x400, addr, addr);
        assert_eq!(right.class, DAccessClass::WayPredicted);
    }

    #[test]
    fn seldm_default_is_direct_mapped_and_places_blocks_in_dm_way() {
        let mut c = controller(DCachePolicy::SelDmWayPredict);
        let addr = same_set_addr(2); // direct-mapping way 2
        let out = c.load(0x400, addr, addr);
        assert!(out.is_miss());
        assert_eq!(out.class, DAccessClass::DirectMapped);
        assert_eq!(out.way, 2, "block must be placed in its direct-mapping way");
        let out = c.load(0x400, addr, addr);
        assert!(out.is_hit());
        assert_eq!(out.class, DAccessClass::DirectMapped);
        assert_eq!(out.ways_probed, 1);
        assert_eq!(out.latency, 1);
    }

    #[test]
    fn repeated_dm_conflicts_are_flagged_and_switch_to_sa_mapping() {
        // Two blocks with the same direct-mapping way thrash until the
        // victim list flags them; after that they coexist in the set and the
        // conflicting loads are handled by the fallback scheme.
        let mut c = controller(DCachePolicy::SelDmParallel);
        let stride = 128 * 32 * 4; // same set, same DM way, different tags
        let a = 0x10_0000;
        let b = a + stride;
        for _ in 0..12 {
            c.load(0x400, a, a);
            c.load(0x404, b, b);
        }
        assert!(
            c.stats().conflicting_blocks_flagged > 0,
            "victim list must flag the thrashing blocks"
        );
        // Once both PCs' counters flip to set-associative, the accesses stop
        // missing: warm up a little more, then measure.
        c.reset_stats();
        for _ in 0..20 {
            c.load(0x400, a, a);
            c.load(0x404, b, b);
        }
        let s = c.stats();
        assert_eq!(s.load_misses, 0, "conflicting blocks should now coexist");
        assert!(
            s.parallel_accesses > 0,
            "conflicting loads use the fallback"
        );
    }

    #[test]
    fn seldm_waypredict_uses_way_table_for_conflicting_loads() {
        let mut c = controller(DCachePolicy::SelDmWayPredict);
        let stride = 128 * 32 * 4;
        let a = 0x10_0000;
        let b = a + stride;
        for _ in 0..16 {
            c.load(0x400, a, a);
            c.load(0x404, b, b);
        }
        c.reset_stats();
        for _ in 0..20 {
            c.load(0x400, a, a);
            c.load(0x404, b, b);
        }
        let s = c.stats();
        assert_eq!(s.load_misses, 0);
        assert!(
            s.way_predicted_accesses > 0,
            "conflicting loads should be way-predicted, got {s:?}"
        );
    }

    #[test]
    fn seldm_sequential_pays_latency_only_for_conflicting_loads() {
        let mut c = controller(DCachePolicy::SelDmSequential);
        let addr = 0x8000;
        c.load(0x400, addr, addr);
        let dm_hit = c.load(0x400, addr, addr);
        assert_eq!(dm_hit.latency, 1, "non-conflicting loads stay one cycle");
        assert_eq!(dm_hit.class, DAccessClass::DirectMapped);
    }

    #[test]
    fn perfect_way_prediction_is_always_single_way_single_cycle() {
        let mut c = controller(DCachePolicy::PerfectWayPredict);
        for i in 0..20u64 {
            let addr = 0x8000 + i * 64;
            c.load(0x400 + i * 4, addr, addr);
            let out = c.load(0x400 + i * 4, addr, addr);
            assert!(out.is_hit());
            assert_eq!(out.ways_probed, 1);
            assert_eq!(out.latency, 1);
        }
        assert_eq!(c.stats().mispredicted_accesses, 0);
    }

    #[test]
    fn stores_always_write_one_way_and_never_predict() {
        for policy in DCachePolicy::all() {
            let mut c = controller(policy);
            let out = c.store(0x500, 0x9000);
            assert_eq!(out.class, DAccessClass::Write);
            assert_eq!(out.ways_probed, 1);
            assert_eq!(out.latency, 1);
            assert!(out.is_miss());
            let out = c.store(0x500, 0x9000);
            assert!(out.is_hit());
            assert_eq!(c.stats().stores, 2);
            assert_eq!(c.stats().store_misses, 1);
            // Store energy does not depend on the read policy.
            let parallel_write = controller(DCachePolicy::Parallel)
                .store(0x500, 0x9000)
                .energy;
            assert!(
                (out.energy - (parallel_write - c.energy_model().data_way_write_energy())).abs()
                    < 1e-9
                    || (out.energy - parallel_write).abs() < 1e-9
            );
        }
    }

    #[test]
    fn energy_ordering_matches_table3() {
        // single-way < misprediction < parallel for the paper's 4-way cache.
        let mut c = controller(DCachePolicy::SelDmWayPredict);
        let single = c.energy_model().single_way_read_energy();
        let mispredicted = c.energy_model().mispredicted_read_energy();
        let parallel = c.energy_model().parallel_read_energy();
        assert!(single < mispredicted && mispredicted < parallel);
        // And the controller actually charges single-way energy for DM hits.
        let addr = 0x8000;
        c.load(0x400, addr, addr);
        let hit = c.load(0x400, addr, addr);
        assert!(hit.energy < 0.35 * parallel);
    }

    #[test]
    fn breakdown_counts_cover_all_loads() {
        let mut c = controller(DCachePolicy::SelDmWayPredict);
        for i in 0..200u64 {
            let addr = 0x8000 + (i % 37) * 32;
            c.load(0x400 + (i % 13) * 4, addr, addr);
        }
        let s = c.stats();
        let classified = s.direct_mapped_accesses
            + s.parallel_accesses
            + s.way_predicted_accesses
            + s.sequential_accesses
            + s.mispredicted_accesses;
        assert_eq!(classified, s.loads);
    }

    #[test]
    fn prediction_energy_is_a_small_fraction() {
        // "their energy overhead is small; however, we account for the
        // overhead in our results" — below ~2 % of cache energy here.
        let mut c = controller(DCachePolicy::SelDmWayPredict);
        for i in 0..500u64 {
            let addr = 0x8000 + (i % 61) * 32;
            c.load(0x400 + (i % 17) * 4, addr, addr);
        }
        let s = c.stats();
        assert!(s.prediction_energy > 0.0);
        assert!(s.prediction_energy < 0.05 * s.cache_energy);
    }

    #[test]
    fn invalid_config_is_rejected() {
        let bad = L1Config::paper_dcache().with_associativity(3);
        assert!(DCacheController::new(bad, DCachePolicy::Parallel).is_err());
    }
}
