//! The generic access core shared by the d-cache and i-cache controllers.
//!
//! Every L1 access the paper evaluates — parallel, sequential, way-predicted,
//! selective-DM, and the perfect-prediction oracle — reduces to the same
//! skeleton: a *way selection* made before the data array is touched, one
//! pass through the tag store, and a *probe resolution* that prices the
//! access in ways-probed, latency, and energy. [`AccessCore`] owns that
//! skeleton once; the controllers specialise it with a [`WaySelect`] policy
//! (the prediction stack) and their own statistics.
//!
//! New access policies — way memoization, cache-level prediction, or
//! anything else from the related work — plug in by implementing
//! [`WaySelect`]; the probe/latency/energy accounting comes for free.

use wp_energy::{CacheEnergyModel, Energy};
use wp_mem::{AccessKind, AccessResult, Placement, SetAssocCache, WayIndex};

use crate::config::{ConfigError, L1Config};

/// Address type re-used from the memory substrate.
pub type Addr = wp_mem::Addr;

/// How the controller decided to probe the data array, before the outcome
/// is known.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WaySelection {
    /// Probe every way in parallel (conventional access, or no usable
    /// prediction).
    Parallel,
    /// Probe only the given predicted way.
    Predicted(WayIndex),
    /// Probe only the direct-mapping way (selective-DM, predicted
    /// non-conflicting).
    DirectMapped(WayIndex),
    /// Serialize tag and data arrays: probe only the matching way.
    Sequential,
    /// Oracle single-way probe with no latency penalty (the perfect
    /// way-prediction bound).
    Oracle,
}

/// Which structure produced a way selection — controllers map this, together
/// with the [`ProbeOutcome`], onto their figure-breakdown classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WaySource {
    /// No prediction structure was involved.
    None,
    /// A PC- or XOR-indexed way-prediction table.
    WayTable,
    /// The selective-DM table predicted the access non-conflicting.
    SelectiveDm,
    /// The branch target buffer's way field.
    Btb,
    /// The sequential-address way-predictor.
    Sawp,
    /// The return address stack's way field.
    Ras,
    /// The perfect-prediction oracle.
    Oracle,
}

impl WaySource {
    /// True for the fetch-engine structures (BTB and RAS supply ways for
    /// control transfers; Figure 10 groups them together).
    pub fn is_branch_structure(&self) -> bool {
        matches!(self, WaySource::Btb | WaySource::Ras)
    }
}

/// A way selection together with its provenance and the prediction-structure
/// energy spent producing it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Selection {
    /// The probe decision.
    pub choice: WaySelection,
    /// Which structure made it.
    pub source: WaySource,
    /// Energy charged to the prediction structures for this access.
    pub energy: Energy,
}

impl Selection {
    /// A conventional parallel probe with no prediction involvement.
    pub fn parallel() -> Self {
        Self {
            choice: WaySelection::Parallel,
            source: WaySource::None,
            energy: 0.0,
        }
    }
}

/// How a probe actually played out once the tag store answered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProbeOutcome {
    /// All ways were probed in parallel.
    Parallel,
    /// A single-way probe that was right (or a clean miss through it).
    SingleWay,
    /// A wrong single-way probe: a corrective second probe was needed.
    Mispredicted,
    /// A serialized tag-then-data access.
    Sequential,
}

/// The resolved cost of one read probe.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Probe {
    /// What happened.
    pub outcome: ProbeOutcome,
    /// Data ways touched (0 for a sequential or oracle access that missed in
    /// the tag array before touching the data array).
    pub ways_probed: usize,
    /// L1 latency in cycles (the caller adds L2/memory latency on misses).
    pub latency: u64,
    /// Energy dissipated in the cache arrays, including the refill write on
    /// a miss.
    pub energy: Energy,
}

/// What the tag store observed, fed back to the policy for training.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Observation {
    /// The way the block occupies after the access (hit way, or the way
    /// filled on a miss).
    pub way: WayIndex,
    /// Whether the block was resident.
    pub hit: bool,
    /// Whether the block sits in its direct-mapping way.
    pub in_direct_mapped_way: bool,
}

/// A way-selection policy: the prediction stack consulted before the probe
/// and trained after it.
///
/// Implementations exist for the d-cache ([`crate::DWaySelect`]) and the
/// fetch-engine i-cache ([`crate::IWaySelect`]); further policies from the
/// literature can be added without touching the accounting in
/// [`AccessCore`].
pub trait WaySelect {
    /// Per-access context (PC and approximate address for loads, the fetch
    /// kind for instruction fetches).
    type Ctx;

    /// Chooses how to probe for this access, charging any
    /// prediction-structure energy to [`Selection::energy`].
    fn select(&mut self, ctx: &Self::Ctx) -> Selection;

    /// Trains the prediction structures with the observed outcome. `cache`
    /// is the tag store, for policies that record the way of a *different*
    /// block (the RAS records the return block's way at call time). Returns
    /// any additional prediction energy.
    fn train(&mut self, ctx: &Self::Ctx, observed: Observation, cache: &SetAssocCache) -> Energy;
}

/// One full read access through the core: tag-store result, priced probe,
/// selection provenance, and prediction energy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoreAccess {
    /// Raw tag-store outcome (hit, way, eviction, placement info).
    pub result: AccessResult,
    /// Priced probe.
    pub probe: Probe,
    /// The way selection that drove the probe.
    pub selection: Selection,
    /// Total prediction-structure energy for this access (selection plus
    /// training).
    pub prediction_energy: Energy,
}

impl CoreAccess {
    /// Total energy of the access: cache arrays plus prediction structures.
    pub fn energy(&self) -> Energy {
        self.probe.energy + self.prediction_energy
    }
}

/// The shared substrate of an energy-aware L1 controller: configuration,
/// tag store, energy model, and the probe/latency/energy accounting rules.
///
/// # Example
///
/// Stores involve no way selection in any policy (end of Section 2.1), so
/// they exercise the core without a [`WaySelect`] implementation:
///
/// ```
/// use wp_cache::{AccessCore, L1Config};
/// use wp_mem::Placement;
///
/// # fn main() -> Result<(), wp_cache::ConfigError> {
/// let mut core = AccessCore::new(L1Config::paper_dcache())?;
/// let miss = core.write(0x1000, Placement::SetAssociative);
/// let hit = core.write(0x1000, Placement::SetAssociative);
/// assert!(miss.result.is_miss() && hit.result.is_hit());
/// assert_eq!(hit.probe.ways_probed, 1);
/// // The miss also paid the refill write into the selected way.
/// assert!(miss.probe.energy > hit.probe.energy);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct AccessCore {
    config: L1Config,
    cache: SetAssocCache,
    energy: CacheEnergyModel,
    costs: ProbeCosts,
}

/// Per-probe-shape costs, precomputed once from the energy model and the
/// configuration so resolving a probe on the hot path is a pair of table
/// lookups — no floating-point model evaluation (the analytic model takes
/// square roots and logarithms) and no allocation per access.
///
/// The pricing rules themselves live here (not on [`AccessCore`]) so the
/// lane-batched d-cache (`crate::lane`) can price per-lane probes against
/// per-lane cost tables without owning a scalar core per lane.
#[derive(Debug, Clone)]
pub(crate) struct ProbeCosts {
    /// Energy of a conventional parallel read of all ways.
    parallel_read: Energy,
    /// Energy of a read probing exactly `i` data ways, indexed by `i`.
    /// Non-parallel probes touch at most two ways (the probe plus the
    /// corrective probe of a misprediction), so a fixed three-entry array
    /// covers every case without a heap indirection.
    n_way_read: [Energy; 3],
    /// Refill write into the selected way, charged to every miss.
    refill_write: Energy,
    /// Energy of a store: tag probe plus a single data-way write.
    write: Energy,
    base_latency: u64,
    sequential_latency: u64,
    mispredict_latency: u64,
    associativity: usize,
}

impl ProbeCosts {
    pub(crate) fn new(config: &L1Config, energy: &CacheEnergyModel) -> Self {
        Self {
            parallel_read: energy.parallel_read_energy(),
            n_way_read: [
                energy.n_way_read_energy(0),
                energy.n_way_read_energy(1),
                energy.n_way_read_energy(2),
            ],
            refill_write: energy.data_way_write_energy(),
            write: energy.write_energy(),
            base_latency: config.base_latency,
            sequential_latency: config.sequential_latency(),
            mispredict_latency: config.mispredict_latency(),
            associativity: config.associativity,
        }
    }

    /// Prices a read probe: the shared ways-probed / latency / energy rules
    /// of Sections 2.1–2.3 and Table 3, previously duplicated between the
    /// two controllers. All costs come from the precomputed tables, so this
    /// is allocation-free and model-evaluation-free.
    #[inline(always)]
    pub(crate) fn resolve(&self, choice: WaySelection, result: &AccessResult) -> Probe {
        let (outcome, ways_probed, latency) = match choice {
            WaySelection::Parallel => (
                ProbeOutcome::Parallel,
                self.associativity,
                self.base_latency,
            ),
            WaySelection::Sequential => (
                ProbeOutcome::Sequential,
                usize::from(result.hit),
                self.sequential_latency,
            ),
            WaySelection::Oracle => (
                ProbeOutcome::SingleWay,
                usize::from(result.hit),
                self.base_latency,
            ),
            WaySelection::Predicted(way) | WaySelection::DirectMapped(way) => {
                if result.hit && result.way != way {
                    // The block lives in a different way: the single-way
                    // probe was wrong and a corrective second probe is
                    // needed.
                    (ProbeOutcome::Mispredicted, 2, self.mispredict_latency)
                } else {
                    // Correct single-way probe, or a miss in which only the
                    // selected way was touched before the tag array reported
                    // the miss.
                    (ProbeOutcome::SingleWay, 1, self.base_latency)
                }
            }
        };
        let mut energy = match outcome {
            ProbeOutcome::Parallel => self.parallel_read,
            _ => self.n_way_read[ways_probed],
        };
        if !result.hit {
            // Refill write into the selected way; identical in every policy.
            energy += self.refill_write;
        }
        Probe {
            outcome,
            ways_probed,
            latency,
            energy,
        }
    }

    /// Prices a store: a tag probe plus a single data-way write (plus the
    /// refill write on a miss), in every policy.
    #[inline(always)]
    pub(crate) fn price_write(&self, result: &AccessResult) -> Probe {
        let mut energy = self.write;
        if !result.hit {
            energy += self.refill_write;
        }
        Probe {
            outcome: ProbeOutcome::SingleWay,
            ways_probed: 1,
            latency: self.base_latency,
            energy,
        }
    }
}

impl AccessCore {
    /// Builds the core for `config`.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if the configuration is inconsistent.
    pub fn new(config: L1Config) -> Result<Self, ConfigError> {
        let geometry = config.geometry()?;
        let energy = CacheEnergyModel::new(geometry);
        let costs = ProbeCosts::new(&config, &energy);
        Ok(Self {
            config,
            cache: SetAssocCache::new(geometry),
            energy,
            costs,
        })
    }

    /// The configuration in use.
    pub fn config(&self) -> &L1Config {
        &self.config
    }

    /// The tag store.
    pub fn cache(&self) -> &SetAssocCache {
        &self.cache
    }

    /// The energy model used to charge accesses.
    pub fn energy_model(&self) -> &CacheEnergyModel {
        &self.energy
    }

    /// One read access under policy `select`: consult the policy, run the
    /// tag store, price the probe, and train the policy.
    #[inline(always)]
    pub fn read<P: WaySelect>(
        &mut self,
        select: &mut P,
        ctx: &P::Ctx,
        addr: Addr,
        placement: Placement,
    ) -> CoreAccess {
        let selection = select.select(ctx);
        let result = self.cache.access(addr, AccessKind::Read, placement);
        let probe = self.costs.resolve(selection.choice, &result);
        let observed = Observation {
            way: result.way,
            hit: result.hit,
            in_direct_mapped_way: result.in_direct_mapped_way,
        };
        let train_energy = select.train(ctx, observed, &self.cache);
        CoreAccess {
            result,
            probe,
            selection,
            prediction_energy: selection.energy + train_energy,
        }
    }

    /// One write access: stores check the tag array first and then write
    /// only the matching way, in every policy (end of Section 2.1), so they
    /// involve no way selection.
    #[inline]
    pub fn write(&mut self, addr: Addr, placement: Placement) -> CoreAccess {
        let result = self.cache.access(addr, AccessKind::Write, placement);
        CoreAccess {
            result,
            probe: self.costs.price_write(&result),
            selection: Selection::parallel(),
            prediction_energy: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scripted policy for exercising the core in isolation.
    struct Scripted(WaySelection);

    impl WaySelect for Scripted {
        type Ctx = ();
        fn select(&mut self, _ctx: &()) -> Selection {
            Selection {
                choice: self.0,
                source: WaySource::WayTable,
                energy: 0.25,
            }
        }
        fn train(&mut self, _ctx: &(), _observed: Observation, _cache: &SetAssocCache) -> Energy {
            0.5
        }
    }

    fn core() -> AccessCore {
        AccessCore::new(L1Config::paper_dcache()).expect("valid config")
    }

    #[test]
    fn parallel_probe_touches_all_ways() {
        let mut core = core();
        let mut p = Scripted(WaySelection::Parallel);
        let access = core.read(&mut p, &(), 0x8000, Placement::SetAssociative);
        assert!(access.result.is_miss());
        assert_eq!(access.probe.outcome, ProbeOutcome::Parallel);
        assert_eq!(access.probe.ways_probed, 4);
        assert_eq!(access.probe.latency, 1);
        assert_eq!(access.prediction_energy, 0.75);
        assert!(access.energy() > access.probe.energy);
    }

    #[test]
    fn predicted_probe_resolves_against_residency() {
        let mut core = core();
        let mut warm = Scripted(WaySelection::Parallel);
        let filled = core.read(&mut warm, &(), 0x8000, Placement::SetAssociative);
        let way = filled.result.way;

        let mut right = Scripted(WaySelection::Predicted(way));
        let hit = core.read(&mut right, &(), 0x8000, Placement::SetAssociative);
        assert_eq!(hit.probe.outcome, ProbeOutcome::SingleWay);
        assert_eq!(hit.probe.ways_probed, 1);
        assert_eq!(hit.probe.latency, 1);

        let mut wrong = Scripted(WaySelection::Predicted(way + 1));
        let miss = core.read(&mut wrong, &(), 0x8000, Placement::SetAssociative);
        assert_eq!(miss.probe.outcome, ProbeOutcome::Mispredicted);
        assert_eq!(miss.probe.ways_probed, 2);
        assert_eq!(miss.probe.latency, 2);
    }

    #[test]
    fn sequential_and_oracle_probe_nothing_on_a_miss() {
        let mut core = core();
        let mut seq = Scripted(WaySelection::Sequential);
        let access = core.read(&mut seq, &(), 0x9000, Placement::SetAssociative);
        assert_eq!(access.probe.ways_probed, 0);
        assert_eq!(access.probe.latency, 2);
        let mut oracle = Scripted(WaySelection::Oracle);
        let access = core.read(&mut oracle, &(), 0xa000, Placement::SetAssociative);
        assert_eq!(access.probe.ways_probed, 0);
        assert_eq!(access.probe.latency, 1);
    }

    #[test]
    fn misses_pay_the_refill_write() {
        let mut core = core();
        let mut p = Scripted(WaySelection::Parallel);
        let miss = core.read(&mut p, &(), 0xb000, Placement::SetAssociative);
        let hit = core.read(&mut p, &(), 0xb000, Placement::SetAssociative);
        let refill = core.energy_model().data_way_write_energy();
        assert!((miss.probe.energy - hit.probe.energy - refill).abs() < 1e-9);
    }

    #[test]
    fn writes_are_single_way_and_unpredicted() {
        let mut core = core();
        let access = core.write(0xc000, Placement::SetAssociative);
        assert!(access.result.is_miss());
        assert_eq!(access.probe.ways_probed, 1);
        assert_eq!(access.prediction_energy, 0.0);
        let again = core.write(0xc000, Placement::SetAssociative);
        assert!(again.result.is_hit());
        assert!(again.probe.energy < access.probe.energy);
    }

    #[test]
    fn branch_structure_sources_are_grouped() {
        assert!(WaySource::Btb.is_branch_structure());
        assert!(WaySource::Ras.is_branch_structure());
        assert!(!WaySource::Sawp.is_branch_structure());
        assert!(!WaySource::WayTable.is_branch_structure());
    }
}
