//! wpsdm — a reproduction of *Reducing Set-Associative Cache Energy via
//! Way-Prediction and Selective Direct-Mapping* (Powell, Agarwal, Vijaykumar,
//! Falsafi, Roy; MICRO 2001).
//!
//! This facade crate re-exports the public API of every workspace crate so
//! downstream users can depend on a single crate:
//!
//! * [`mem`] — set-associative cache model and L2/memory hierarchy,
//! * [`energy`] — CACTI-style cache energy model and Wattch-style processor
//!   energy model,
//! * [`predictors`] — way-prediction tables, the selective-DM table, the
//!   victim list, and the fetch-engine structures (BTB, SAWP, RAS, hybrid
//!   branch predictor),
//! * [`cache`] — the paper's contribution: energy-aware L1 d-cache and
//!   i-cache controllers,
//! * [`cpu`] — the trace-driven out-of-order processor timing model,
//! * [`workloads`] — synthetic SPEC CPU95-like benchmark traces,
//! * [`oracle`] — the deliberately naive reference simulator the optimized
//!   stack is differentially pinned to (see `docs/VALIDATION.md`),
//! * [`experiments`] — runners that regenerate every table and figure of the
//!   paper's evaluation, plus the `conformance` differential harness,
//! * [`serve`] — sweep-as-a-service: a crash-tolerant daemon with admission
//!   control, deadlines, and cross-request singleflight (`docs/SERVICE.md`).
//!
//! See the repository README for a tour and `examples/` for runnable entry
//! points (`quickstart`, `dcache_policy_explorer`, `icache_waypred`,
//! `custom_workload`).
//!
//! # Example
//!
//! ```
//! use wpsdm::cache::{DCacheController, DCachePolicy, L1Config};
//!
//! # fn main() -> Result<(), wpsdm::cache::ConfigError> {
//! let mut dcache =
//!     DCacheController::new(L1Config::paper_dcache(), DCachePolicy::SelDmWayPredict)?;
//! dcache.load(0x400, 0x1000, 0x1000);
//! let hit = dcache.load(0x400, 0x1000, 0x1000);
//! assert!(hit.is_hit());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use wp_cache as cache;
pub use wp_cpu as cpu;
pub use wp_energy as energy;
pub use wp_experiments as experiments;
pub use wp_mem as mem;
pub use wp_oracle as oracle;
pub use wp_predictors as predictors;
pub use wp_serve as serve;
pub use wp_workloads as workloads;
