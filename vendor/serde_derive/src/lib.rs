//! Minimal offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize, Deserialize)]` for the shapes this
//! workspace uses — structs with named fields and enums with unit variants —
//! by walking the raw token stream (no `syn`/`quote` available offline).
//! Generics are not supported; deriving on a generic type is a compile
//! error with a clear message.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What a derive input parsed into.
enum Input {
    /// Struct name and named-field identifiers.
    Struct { name: String, fields: Vec<String> },
    /// Enum name and unit-variant identifiers.
    Enum { name: String, variants: Vec<String> },
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let code = match parse(input) {
        Input::Struct { name, fields } => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "fields.push((\"{f}\".to_string(), \
                         ::serde::Serialize::to_value(&self.{f})));"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         let mut fields: Vec<(String, ::serde::Value)> = Vec::new();\n\
                         {pushes}\n\
                         ::serde::Value::Object(fields)\n\
                     }}\n\
                 }}"
            )
        }
        Input::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => \"{v}\",\n"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Str(match self {{ {arms} }}.to_string())\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = match parse(input) {
        Input::Struct { name, .. } | Input::Enum { name, .. } => name,
    };
    format!("impl ::serde::Deserialize for {name} {{}}")
        .parse()
        .expect("generated Deserialize impl must parse")
}

/// Parses a derive input down to the names the generated impls need.
fn parse(input: TokenStream) -> Input {
    let mut tokens = input.into_iter().peekable();
    let mut kind: Option<&'static str> = None;
    let mut name: Option<String> = None;

    while let Some(token) = tokens.next() {
        match token {
            // Skip outer attributes (`#[...]`, doc comments).
            TokenTree::Punct(p) if p.as_char() == '#' => {
                let _ = tokens.next();
            }
            TokenTree::Ident(ident) => {
                let text = ident.to_string();
                match text.as_str() {
                    "pub" => {
                        // Skip a `pub(...)` restriction if present.
                        if let Some(TokenTree::Group(g)) = tokens.peek() {
                            if g.delimiter() == Delimiter::Parenthesis {
                                let _ = tokens.next();
                            }
                        }
                    }
                    "struct" | "enum" => {
                        kind = Some(if text == "struct" { "struct" } else { "enum" });
                        match tokens.next() {
                            Some(TokenTree::Ident(n)) => name = Some(n.to_string()),
                            other => panic!("expected type name after `{text}`, got {other:?}"),
                        }
                        break;
                    }
                    _ => {}
                }
            }
            _ => {}
        }
    }

    let kind = kind.expect("derive input must be a struct or enum");
    let name = name.expect("derive input must have a name");

    // The remaining tokens are (optionally) generics, then the body group.
    let mut body = None;
    for token in tokens {
        match token {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                panic!("the offline serde_derive shim does not support generic types ({name})")
            }
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                body = Some(g.stream());
                break;
            }
            _ => {}
        }
    }
    let body = body.unwrap_or_else(|| {
        panic!("the offline serde_derive shim only supports brace-bodied types ({name})")
    });

    if kind == "struct" {
        Input::Struct {
            name,
            fields: parse_named_fields(body),
        }
    } else {
        Input::Enum {
            name,
            variants: parse_unit_variants(body),
        }
    }
}

/// Extracts field names from a named-field struct body.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        // Skip field attributes and visibility.
        let ident = loop {
            match tokens.next() {
                None => return fields,
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    let _ = tokens.next();
                }
                Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                    if let Some(TokenTree::Group(g)) = tokens.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            let _ = tokens.next();
                        }
                    }
                }
                Some(TokenTree::Ident(i)) => break i.to_string(),
                Some(other) => panic!("unexpected token in struct body: {other:?}"),
            }
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!(
                "the offline serde_derive shim only supports named fields \
                 (after `{ident}` expected `:`, got {other:?})"
            ),
        }
        fields.push(ident);
        // Skip the type: consume until a comma at angle-bracket depth zero.
        let mut depth = 0i32;
        for token in tokens.by_ref() {
            if let TokenTree::Punct(p) = token {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => break,
                    _ => {}
                }
            }
        }
    }
}

/// Extracts variant names from a unit-variant enum body.
fn parse_unit_variants(body: TokenStream) -> Vec<String> {
    let mut variants = Vec::new();
    let mut tokens = body.into_iter().peekable();
    while let Some(token) = tokens.next() {
        match token {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                let _ = tokens.next();
            }
            TokenTree::Ident(ident) => {
                let variant = ident.to_string();
                match tokens.peek() {
                    None => variants.push(variant),
                    Some(TokenTree::Punct(p)) if p.as_char() == ',' => {
                        variants.push(variant);
                        let _ = tokens.next();
                    }
                    Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                        // Explicit discriminant: skip to the next comma.
                        variants.push(variant);
                        for token in tokens.by_ref() {
                            if matches!(&token, TokenTree::Punct(p) if p.as_char() == ',') {
                                break;
                            }
                        }
                    }
                    Some(other) => panic!(
                        "the offline serde_derive shim only supports unit enum \
                         variants ({variant} is followed by {other:?})"
                    ),
                }
            }
            other => panic!("unexpected token in enum body: {other:?}"),
        }
    }
    variants
}
