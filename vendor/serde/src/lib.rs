//! Minimal offline stand-in for `serde`.
//!
//! Provides the [`Serialize`] / [`Deserialize`] traits over an in-crate
//! JSON-like [`Value`] tree, plus re-exports of the derive macros. The
//! workspace only serialises (the `--json` experiment output), so
//! [`Deserialize`] is a marker trait: deriving it documents round-trip
//! intent without pulling in a parser.

#![forbid(unsafe_code)]

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A JSON-like value tree produced by [`Serialize`].
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer.
    UInt(u64),
    /// Floating-point number (non-finite values render as `null`).
    Float(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(u) => Some(*u),
            Value::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(x) => Some(*x),
            Value::UInt(u) => Some(*u as f64),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value's items, if it is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value's fields, if it is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// The field named `key`, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }
}

/// Types that can be turned into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Marker for types whose derive documents deserialisation intent.
///
/// The offline shim has no parser; deriving this is a no-op that keeps the
/// source compatible with the real `serde`.
pub trait Deserialize {}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {}
    )*};
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
        impl Deserialize for $t {}
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);
impl_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}
impl Deserialize for f64 {}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}
impl Deserialize for f32 {}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize, const N: usize> Deserialize for [T; N] {}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {}
    )*};
}

impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_map_to_expected_variants() {
        assert_eq!(3u32.to_value(), Value::UInt(3));
        assert_eq!((-3i64).to_value(), Value::Int(-3));
        assert_eq!(true.to_value(), Value::Bool(true));
        assert_eq!(None::<f64>.to_value(), Value::Null);
        assert_eq!(
            ("a".to_string(), 1.5f64).to_value(),
            Value::Array(vec![Value::Str("a".into()), Value::Float(1.5)])
        );
    }

    #[test]
    fn collections_serialize_elementwise() {
        let v = vec![1u8, 2, 3].to_value();
        assert_eq!(
            v,
            Value::Array(vec![Value::UInt(1), Value::UInt(2), Value::UInt(3)])
        );
        let a = [0.5f64; 2].to_value();
        assert_eq!(a, Value::Array(vec![Value::Float(0.5), Value::Float(0.5)]));
    }
}
