//! Minimal offline stand-in for the `rand` crate.
//!
//! Implements the slice of the `rand` 0.8 API used by this workspace:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! extension methods `gen`, `gen_bool`, and `gen_range` over integer ranges.
//! The generator is xoshiro256++ seeded via SplitMix64 — statistically solid
//! for simulation workloads and fully deterministic, which the trace
//! generator and experiment engine depend on. The streams differ from the
//! real `StdRng` (ChaCha12), so absolute trace contents change if the real
//! crate is swapped back in; every consumer in this workspace only relies on
//! determinism and uniformity, not on specific streams.

#![forbid(unsafe_code)]

use core::ops::{Range, RangeInclusive};

/// Core entropy source: a stream of uniform `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, matching `rand::SeedableRng`'s `seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, matching the `rand::Rng` extension trait.
pub trait Rng: RngCore {
    /// Samples a value of a type with a standard uniform distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} outside [0, 1]"
        );
        f64::sample(self) < p
    }

    /// Samples uniformly from a range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<T: RngCore> Rng for T {}

/// Types sampleable by [`Rng::gen`] with their standard distribution.
pub trait Standard {
    /// Draws one value from `rng`.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

/// Ranges usable with [`Rng::gen_range`], producing values of `T`.
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, bound)` by widening multiply (unbiased enough for
/// simulation use; bounds here are far below 2^64).
fn below(rng: &mut impl RngCore, bound: u64) -> u64 {
    assert!(bound > 0, "cannot sample from an empty range");
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = (self.end - self.start) as u64;
                self.start + below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from an empty range");
                let span = (end - start) as u64 + 1;
                start + below(rng, span) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from an empty range");
                let span = end.wrapping_sub(start) as u64 + 1;
                start.wrapping_add(below(rng, span) as $t)
            }
        }
    )*};
}

impl_signed_range!(i8, i16, i32, i64, isize);

/// Namespaced generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed, as recommended by the
            // xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(42);
            (0..8).map(|_| r.gen()).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(42);
            (0..8).map(|_| r.gen()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(43);
            (0..8).map(|_| r.gen()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = r.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = r.gen_range(5u32..=9);
            assert!((5..=9).contains(&y));
        }
    }

    #[test]
    fn f64_is_uniformish() {
        let mut r = StdRng::seed_from_u64(1);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(2);
        let n = 20_000;
        let hits = (0..n).filter(|_| r.gen_bool(0.3)).count() as f64;
        assert!((hits / n as f64 - 0.3).abs() < 0.02);
    }
}
