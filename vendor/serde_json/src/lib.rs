//! Minimal offline stand-in for `serde_json`: JSON rendering of
//! `serde::Value` trees with the same compact / pretty split as the real
//! crate.

#![forbid(unsafe_code)]

use core::fmt;

pub use serde::Value;

/// Serialisation error. Rendering a `Value` tree cannot fail, so this is
/// uninhabited in practice; it exists to keep the `Result` signatures of the
/// real crate.
#[derive(Debug)]
pub struct Error(());

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("JSON serialisation error")
    }
}

impl std::error::Error for Error {}

/// Serialises `value` to a compact JSON string.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialises `value` to pretty JSON (two-space indent, like `serde_json`).
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(x) => {
            if x.is_finite() {
                out.push_str(&format_float(*x));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            out.push('[');
            write_seq(out, items.len(), indent, depth, |out, index, ind, d| {
                write_value(out, &items[index], ind, d)
            });
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            write_seq(out, fields.len(), indent, depth, |out, index, ind, d| {
                let (key, value) = &fields[index];
                write_string(out, key);
                out.push(':');
                if ind.is_some() {
                    out.push(' ');
                }
                write_value(out, value, ind, d);
            });
            out.push('}');
        }
    }
}

/// Writes `len` comma-separated (and, in pretty mode, indented) items, each
/// rendered by `write_item(out, index, indent, depth)`. The caller pushes
/// the surrounding delimiters.
fn write_seq(
    out: &mut String,
    len: usize,
    indent: Option<usize>,
    depth: usize,
    mut write_item: impl FnMut(&mut String, usize, Option<usize>, usize),
) {
    for index in 0..len {
        if index > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        write_item(out, index, indent, depth + 1);
    }
    if len > 0 {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * depth));
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Formats a finite float the way `serde_json` does: integral values keep a
/// trailing `.0` so the token remains a float.
fn format_float(x: f64) -> String {
    if x == x.trunc() && x.abs() < 1e15 {
        format!("{x:.1}")
    } else {
        format!("{x}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty_rendering() {
        let v = Value::Object(vec![
            ("x".to_string(), Value::UInt(3)),
            (
                "ys".to_string(),
                Value::Array(vec![Value::Float(0.5), Value::Float(2.0)]),
            ),
        ]);
        assert_eq!(
            to_string(&ValueWrap(v.clone())).unwrap(),
            "{\"x\":3,\"ys\":[0.5,2.0]}"
        );
        let pretty = to_string_pretty(&ValueWrap(v)).unwrap();
        assert!(pretty.contains("\"x\": 3"));
        assert!(pretty.contains("  \"ys\": ["));
    }

    #[test]
    fn strings_are_escaped() {
        let v = Value::Str("a\"b\\c\nd".to_string());
        assert_eq!(to_string(&ValueWrap(v)).unwrap(), r#""a\"b\\c\nd""#);
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(
            to_string(&ValueWrap(Value::Float(f64::NAN))).unwrap(),
            "null"
        );
    }

    struct ValueWrap(Value);
    impl serde::Serialize for ValueWrap {
        fn to_value(&self) -> Value {
            self.0.clone()
        }
    }
}
