//! Minimal offline stand-in for `serde_json`: JSON rendering of
//! `serde::Value` trees with the same compact / pretty split as the real
//! crate, plus a strict recursive-descent parser ([`from_str`]) producing
//! the same `Value` tree with `serde_json`-style positioned errors.

#![forbid(unsafe_code)]

use core::fmt;

pub use serde::Value;

/// Serialisation error. Rendering a `Value` tree cannot fail, so this is
/// uninhabited in practice; it exists to keep the `Result` signatures of the
/// real crate.
#[derive(Debug)]
pub struct Error(());

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("JSON serialisation error")
    }
}

impl std::error::Error for Error {}

/// Serialises `value` to a compact JSON string.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialises `value` to pretty JSON (two-space indent, like `serde_json`).
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(x) => {
            if x.is_finite() {
                out.push_str(&format_float(*x));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            out.push('[');
            write_seq(out, items.len(), indent, depth, |out, index, ind, d| {
                write_value(out, &items[index], ind, d)
            });
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            write_seq(out, fields.len(), indent, depth, |out, index, ind, d| {
                let (key, value) = &fields[index];
                write_string(out, key);
                out.push(':');
                if ind.is_some() {
                    out.push(' ');
                }
                write_value(out, value, ind, d);
            });
            out.push('}');
        }
    }
}

/// Writes `len` comma-separated (and, in pretty mode, indented) items, each
/// rendered by `write_item(out, index, indent, depth)`. The caller pushes
/// the surrounding delimiters.
fn write_seq(
    out: &mut String,
    len: usize,
    indent: Option<usize>,
    depth: usize,
    mut write_item: impl FnMut(&mut String, usize, Option<usize>, usize),
) {
    for index in 0..len {
        if index > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        write_item(out, index, indent, depth + 1);
    }
    if len > 0 {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * depth));
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Formats a finite float the way `serde_json` does: integral values keep a
/// trailing `.0` so the token remains a float.
fn format_float(x: f64) -> String {
    if x == x.trunc() && x.abs() < 1e15 {
        format!("{x:.1}")
    } else {
        format!("{x}")
    }
}

/// Parse error with the 1-based line and column of the offending byte,
/// rendered in the real crate's `"<what> at line L column C"` shape so
/// callers can surface it verbatim.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    message: String,
    line: usize,
    column: usize,
}

impl ParseError {
    /// The description without the position suffix.
    pub fn message(&self) -> &str {
        &self.message
    }

    /// 1-based line of the error.
    pub fn line(&self) -> usize {
        self.line
    }

    /// 1-based column of the error.
    pub fn column(&self) -> usize {
        self.column
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} at line {} column {}",
            self.message, self.line, self.column
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses a JSON document into a [`Value`] tree.
///
/// Strict JSON: no comments, no trailing commas, exactly one top-level
/// value. Integral numbers parse to `Value::UInt` (non-negative) or
/// `Value::Int` (negative); everything else numeric parses to
/// `Value::Float`.
pub fn from_str(input: &str) -> Result<Value, ParseError> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos < parser.bytes.len() {
        return Err(parser.error("trailing characters"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> ParseError {
        let mut line = 1;
        let mut column = 1;
        for &b in &self.bytes[..self.pos.min(self.bytes.len())] {
            if b == b'\n' {
                line += 1;
                column = 1;
            } else {
                column += 1;
            }
        }
        ParseError {
            message: message.to_string(),
            line,
            column,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, expected: u8, what: &str) -> Result<(), ParseError> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(what))
        }
    }

    fn eat_literal(&mut self, literal: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(value)
        } else {
            Err(self.error("expected value"))
        }
    }

    fn parse_value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') => self.eat_literal("true", Value::Bool(true)),
            Some(b'f') => self.eat_literal("false", Value::Bool(false)),
            Some(b'n') => self.eat_literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err(self.error("expected value")),
        }
    }

    fn parse_object(&mut self) -> Result<Value, ParseError> {
        self.eat(b'{', "expected object")?;
        let mut fields = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_whitespace();
            if self.peek() != Some(b'"') {
                return Err(self.error("key must be a string"));
            }
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.eat(b':', "expected `:`")?;
            self.skip_whitespace();
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.error("expected `,` or `}`")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, ParseError> {
        self.eat(b'[', "expected array")?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]`")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"', "expected string")?;
        self.parse_string_body()
    }

    /// Parses a string body after the opening quote: raw spans are copied
    /// in one piece, escapes decoded as they appear.
    fn parse_string_body(&mut self) -> Result<String, ParseError> {
        let mut out = String::new();
        let mut start = self.pos;
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    out.push_str(
                        core::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.error("invalid UTF-8 in string"))?,
                    );
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    out.push_str(
                        core::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.error("invalid UTF-8 in string"))?,
                    );
                    self.pos += 1;
                    let escaped = self
                        .peek()
                        .ok_or_else(|| self.error("unterminated string"))?;
                    self.pos += 1;
                    match escaped {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| core::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.error("invalid \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(hex)
                                    .ok_or_else(|| self.error("invalid \\u escape"))?,
                            );
                        }
                        _ => return Err(self.error("invalid escape")),
                    }
                    start = self.pos;
                }
                Some(_) => self.pos += 1,
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = core::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.error("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty_rendering() {
        let v = Value::Object(vec![
            ("x".to_string(), Value::UInt(3)),
            (
                "ys".to_string(),
                Value::Array(vec![Value::Float(0.5), Value::Float(2.0)]),
            ),
        ]);
        assert_eq!(
            to_string(&ValueWrap(v.clone())).unwrap(),
            "{\"x\":3,\"ys\":[0.5,2.0]}"
        );
        let pretty = to_string_pretty(&ValueWrap(v)).unwrap();
        assert!(pretty.contains("\"x\": 3"));
        assert!(pretty.contains("  \"ys\": ["));
    }

    #[test]
    fn strings_are_escaped() {
        let v = Value::Str("a\"b\\c\nd".to_string());
        assert_eq!(to_string(&ValueWrap(v)).unwrap(), r#""a\"b\\c\nd""#);
    }

    #[test]
    fn parser_round_trips_rendered_values() {
        let v = Value::Object(vec![
            ("name".to_string(), Value::Str("a\"b\n".to_string())),
            ("n".to_string(), Value::UInt(42)),
            ("neg".to_string(), Value::Int(-7)),
            ("x".to_string(), Value::Float(1.5)),
            ("flag".to_string(), Value::Bool(true)),
            ("none".to_string(), Value::Null),
            (
                "items".to_string(),
                Value::Array(vec![Value::UInt(1), Value::UInt(2)]),
            ),
        ]);
        let compact = to_string(&ValueWrap(v.clone())).unwrap();
        assert_eq!(from_str(&compact).unwrap(), v);
        let pretty = to_string_pretty(&ValueWrap(v.clone())).unwrap();
        assert_eq!(from_str(&pretty).unwrap(), v);
    }

    #[test]
    fn parser_reports_positioned_errors() {
        let err = from_str("{\"a\": }").unwrap_err();
        assert_eq!(err.to_string(), "expected value at line 1 column 7");
        let err = from_str("{\"a\": 1,\n  \"b\": tru}").unwrap_err();
        assert_eq!(err.line(), 2);
        let err = from_str("[1, 2").unwrap_err();
        assert_eq!(err.message(), "expected `,` or `]`");
        let err = from_str("{\"a\": 1} extra").unwrap_err();
        assert_eq!(err.message(), "trailing characters");
        assert!(from_str("").is_err());
        assert!(from_str("{\"a\" 1}").is_err());
        assert!(from_str("\"unterminated").is_err());
    }

    #[test]
    fn parser_number_variants() {
        assert_eq!(from_str("42").unwrap(), Value::UInt(42));
        assert_eq!(from_str("-42").unwrap(), Value::Int(-42));
        assert_eq!(from_str("1.25").unwrap(), Value::Float(1.25));
        assert_eq!(from_str("2e3").unwrap(), Value::Float(2000.0));
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(
            to_string(&ValueWrap(Value::Float(f64::NAN))).unwrap(),
            "null"
        );
    }

    struct ValueWrap(Value);
    impl serde::Serialize for ValueWrap {
        fn to_value(&self) -> Value {
            self.0.clone()
        }
    }
}
