//! Minimal offline stand-in for `proptest`.
//!
//! Implements the surface this workspace's property tests use: the
//! [`proptest!`] macro, `prop_assert!` / `prop_assert_eq!`, the
//! [`strategy::Strategy`] trait with range / tuple / map strategies,
//! `prop::collection::vec`, and `any::<T>()`. Cases are generated from a
//! deterministic per-test RNG (seeded from the test name and case index),
//! so failures reproduce exactly; there is no shrinking — the failing
//! inputs are printed instead.

#![forbid(unsafe_code)]

pub use config::ProptestConfig;

/// Test-runner plumbing: the deterministic case RNG.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// The RNG handed to strategies for one test case.
    #[derive(Debug, Clone)]
    pub struct TestRng(StdRng);

    impl TestRng {
        /// A deterministic RNG for `(test name, case index)`.
        pub fn deterministic(name: &str, case: u64) -> Self {
            // FNV-1a over the test name, mixed with the case index.
            let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
            for byte in name.bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x1000_0000_01b3);
            }
            Self(StdRng::seed_from_u64(
                hash ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15),
            ))
        }
    }

    impl rand::RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

mod config {
    /// Per-test configuration (`cases` is the only knob the shim honours).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases generated per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }
}

/// Strategies: how test inputs are generated.
pub mod strategy {
    use crate::test_runner::TestRng;
    use core::fmt::Debug;
    use core::ops::{Range, RangeInclusive};
    use rand::Rng;

    /// A generator of test values.
    pub trait Strategy {
        /// The value type produced.
        type Value: Debug;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// The result of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($(($($t:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($t: Strategy),+> Strategy for ($($t,)+) {
                type Value = ($($t::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($t,)+) = self;
                    ($($t.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
    }

    /// Strategy returned by [`crate::arbitrary::any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(pub(crate) core::marker::PhantomData<T>);

    impl Strategy for Any<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.gen()
        }
    }

    impl Strategy for Any<u64> {
        type Value = u64;
        fn generate(&self, rng: &mut TestRng) -> u64 {
            rng.gen()
        }
    }

    impl Strategy for Any<u32> {
        type Value = u32;
        fn generate(&self, rng: &mut TestRng) -> u32 {
            rng.gen()
        }
    }
}

/// `any::<T>()` — the "arbitrary value" strategy.
pub mod arbitrary {
    use crate::strategy::Any;

    /// A strategy producing arbitrary values of `T` (`bool`, `u32`, `u64`).
    pub fn any<T>() -> Any<T>
    where
        Any<T>: crate::strategy::Strategy,
    {
        Any(core::marker::PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::ops::Range;
    use rand::Rng;

    /// A strategy for `Vec`s with element strategy `element` and a length
    /// drawn from `length`.
    pub fn vec<S: Strategy>(element: S, length: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, length }
    }

    /// The result of [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        length: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.gen_range(self.length.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The glob import used by property tests.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Namespace mirror of the real crate's `prop` re-export.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines property tests. Each `#[test]` inside the block becomes a
/// standard test that generates inputs from its strategies and runs the body
/// for the configured number of cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ($cfg:expr;) => {};
    ($cfg:expr;
        $(#[doc = $doc:expr])*
        #[test]
        fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) { $($body:tt)* }
        $($rest:tt)*
    ) => {
        $(#[doc = $doc])*
        #[test]
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..u64::from(config.cases) {
                let mut rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name), case);
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                $crate::__proptest_case! { case; ($($arg),*); { $($body)* } }
            }
        }
        $crate::__proptest_tests! { $cfg; $($rest)* }
    };
}

/// Internal per-case wrapper printing the failing inputs; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_case {
    ($case:expr; ($($arg:ident),*); { $($body:tt)* }) => {
        {
            // Render the inputs up front: the body may consume them.
            let inputs = format!("{:?}", ($(&$arg),*));
            let run = || { $($body)* };
            let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run));
            if let Err(panic) = result {
                eprintln!("proptest case {} failed with inputs: {}", $case, inputs);
                ::std::panic::resume_unwind(panic);
            }
        }
    };
}

/// Asserts a condition inside a property (alias of `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property (alias of `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property (alias of `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Range strategies respect their bounds.
        #[test]
        fn ranges_in_bounds(x in 3usize..10, y in 5u64..=6) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y == 5 || y == 6);
        }

        /// Mapped and tuple strategies compose.
        #[test]
        fn mapping_composes(pair in (0u32..4, 0u32..4).prop_map(|(a, b)| a + b)) {
            prop_assert!(pair <= 6);
        }

        /// Collection strategies honour their length range.
        #[test]
        fn vec_lengths(v in prop::collection::vec(any::<bool>(), 1..5)) {
            prop_assert!(!v.is_empty() && v.len() < 5);
        }
    }

    #[test]
    fn rng_is_deterministic_per_case() {
        use crate::strategy::Strategy;
        let strat = 0u64..1_000_000;
        let mut a = crate::test_runner::TestRng::deterministic("t", 7);
        let mut b = crate::test_runner::TestRng::deterministic("t", 7);
        assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
    }
}
