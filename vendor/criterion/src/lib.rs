//! Minimal offline stand-in for `criterion`.
//!
//! Provides the macro/struct surface the workspace's benches use —
//! [`Criterion`], [`criterion_group!`], [`criterion_main!`],
//! `bench_function`, and `benchmark_group` — backed by a plain wall-clock
//! loop that reports mean / min / max per benchmark. No statistics engine,
//! no HTML reports; enough to regenerate the qualitative results and track
//! throughput over time.

#![forbid(unsafe_code)]

use std::time::Instant;

/// Re-export matching `criterion::black_box` (the real crate's own is a
/// wrapper over the same intrinsic).
pub use std::hint::black_box;

/// The benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        bencher.report(name);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named group of benchmarks (IDs are printed as `group/name`).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let id = format!("{}/{}", self.name, name);
        self.criterion.bench_function(&id, f);
        self
    }

    /// Closes the group (formatting no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Collects timing samples for one benchmark.
pub struct Bencher {
    samples: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    /// Times `sample_size` executions of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One untimed warm-up execution.
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed().as_secs_f64());
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<40} (no samples)");
            return;
        }
        let n = self.samples.len() as f64;
        let mean = self.samples.iter().sum::<f64>() / n;
        let min = self.samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = self.samples.iter().cloned().fold(0.0f64, f64::max);
        println!(
            "{name:<40} mean {:>10}  min {:>10}  max {:>10}",
            format_time(mean),
            format_time(min),
            format_time(max)
        );
    }
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else {
        format!("{:.3} µs", seconds * 1e6)
    }
}

/// Declares a group of benchmark functions, mirroring the real macro's
/// `name = ...; config = ...; targets = ...` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),* $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)*
        }
    };
    ($name:ident, $($target:path),* $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),*
        );
    };
}

/// Declares the bench `main` that runs one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),* $(,)?) => {
        fn main() {
            $($group();)*
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_the_routine() {
        let mut calls = 0u32;
        Criterion::default()
            .sample_size(3)
            .bench_function("counter", |b| b.iter(|| calls += 1));
        // 3 timed + 1 warm-up execution.
        assert_eq!(calls, 4);
    }

    #[test]
    fn groups_prefix_names() {
        let mut c = Criterion::default().sample_size(1);
        let mut group = c.benchmark_group("g");
        group.bench_function("x", |b| b.iter(|| 1 + 1));
        group.finish();
    }

    #[test]
    fn time_formatting_picks_units() {
        assert!(format_time(2.0).ends_with(" s"));
        assert!(format_time(2e-3).ends_with(" ms"));
        assert!(format_time(2e-6).ends_with(" µs"));
    }
}
