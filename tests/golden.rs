//! Golden artefact snapshots: `tests/golden/*.json` holds every one of the
//! eleven figure/table artefacts rendered at the pinned
//! [`wpsdm::experiments::conformance::GOLDEN_OPTIONS`], committed so a
//! regression in any measured number shows up as a reviewable JSON diff.
//!
//! On intentional model changes, regenerate with
//! `cargo run --release -p wp-experiments --bin conformance -- --bless
//! --skip-sweep --random 0` and commit the updated files (see
//! `docs/VALIDATION.md`).

use wpsdm::experiments::conformance::{
    check_goldens, default_golden_dir, render_golden_artefacts, GOLDEN_ARTEFACTS,
};

#[test]
fn committed_goldens_match_the_fresh_render() {
    let drift = check_goldens(&default_golden_dir(), 2);
    assert!(
        drift.is_empty(),
        "golden artefacts drifted (regenerate with `conformance --bless` if \
         the change is intentional): {drift:?}"
    );
}

#[test]
fn every_artefact_has_a_committed_golden() {
    let dir = default_golden_dir();
    for name in GOLDEN_ARTEFACTS {
        assert!(
            dir.join(format!("{name}.json")).is_file(),
            "missing golden snapshot {name}.json"
        );
    }
}

#[test]
fn golden_renders_are_deterministic_across_thread_counts() {
    let serial = render_golden_artefacts(1);
    let parallel = render_golden_artefacts(4);
    for ((name_a, json_a), (name_b, json_b)) in serial.iter().zip(parallel.iter()) {
        assert_eq!(name_a, name_b);
        assert_eq!(json_a, json_b, "{name_a} render depends on the schedule");
    }
}
