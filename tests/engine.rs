//! Integration tests for the simulation engine: determinism across
//! execution schedules, cross-figure dedup, and the run_all
//! execute-each-point-exactly-once invariant.

use wpsdm::cache::DCachePolicy;
use wpsdm::experiments::engine::{SimEngine, SimPlan};
use wpsdm::experiments::{fig11, fig6, run_all_plan};
use wpsdm::experiments::{MachineConfig, RunOptions, SimPoint};
use wpsdm::workloads::Benchmark;

/// A trace length small enough to sweep the full run_all plan in a test.
fn tiny() -> RunOptions {
    RunOptions::quick().with_ops(2_000)
}

#[test]
fn run_all_plan_shares_points_across_figures() {
    let options = tiny();
    let plan = run_all_plan(&options);
    let unique = plan.unique_points();

    // The figures genuinely overlap: Figures 4-6, Table 5, Figure 10 (4-way)
    // and Figure 11 all reuse the parallel baseline, Figures 6/7/8 and
    // Table 5 share the selective-DM machine, and so on.
    assert!(
        unique.len() < plan.len(),
        "the union plan must contain cross-figure duplicates \
         ({} requested, {} unique)",
        plan.len(),
        unique.len()
    );

    // And the deduplicated plan must contain no duplicate points.
    for (i, a) in unique.iter().enumerate() {
        for b in unique.iter().skip(i + 1) {
            assert_ne!(a, b, "unique_points must not repeat a point");
        }
    }

    // The shared baseline is requested by six artefacts but appears once.
    let baseline_requests = plan
        .points()
        .iter()
        .filter(|p| p.benchmark() == Some(Benchmark::Gcc) && p.machine == MachineConfig::baseline())
        .count();
    assert!(
        baseline_requests >= 6,
        "expected at least six consumers of the baseline, got {baseline_requests}"
    );
}

#[test]
fn run_all_executes_each_unique_point_exactly_once() {
    let options = tiny();
    let plan = run_all_plan(&options);
    let unique = plan.unique_points().len();

    let engine = SimEngine::default();
    let mut matrix = engine.run(&plan);
    assert_eq!(
        matrix.executed_points(),
        unique,
        "the engine must execute each unique (benchmark, machine, options) \
         point exactly once across all 11 tables/figures"
    );
    assert_eq!(matrix.len(), unique);

    // Feeding the same plan again performs zero additional simulations.
    engine.run_into(&mut matrix, &plan);
    assert_eq!(matrix.executed_points(), unique);

    // Every renderer can produce its artefact from the shared matrix.
    assert!(!fig6::from_matrix(&matrix, &options).to_table().is_empty());
    assert!(!fig11::from_matrix(&matrix, &options).to_table().is_empty());
}

#[test]
fn serial_and_parallel_runs_are_identical() {
    let options = tiny();
    // A representative slice of the run_all plan (keeps the double
    // execution cheap).
    let mut plan = SimPlan::new();
    let baseline = MachineConfig::baseline();
    for benchmark in [Benchmark::Gcc, Benchmark::Swim, Benchmark::Fpppp] {
        plan.add(SimPoint::new(benchmark, baseline, options));
        plan.add(SimPoint::new(
            benchmark,
            baseline.with_dpolicy(DCachePolicy::SelDmWayPredict),
            options,
        ));
        plan.add(SimPoint::new(
            benchmark,
            baseline.with_dpolicy(DCachePolicy::Sequential),
            options,
        ));
    }

    let serial = SimEngine::serial().run(&plan);
    let parallel = SimEngine::new(8).run(&plan);

    for point in plan.unique_points() {
        let a = serial.require_workload(&point.workload, &point.machine, &point.options);
        let b = parallel.require_workload(&point.workload, &point.machine, &point.options);
        assert_eq!(
            a, b,
            "{}: serial and parallel results must be identical for the same seed",
            point.workload
        );
    }
}
