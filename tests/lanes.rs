//! Integration tests for config-parallel lane batching: lane-batched
//! simulation is bit-identical to scalar monomorphized runs over arbitrary
//! gangs (every d-cache policy, partial widths 1..MAX_LANES, heterogeneous
//! free parameters), the engine's lane partition is exhaustive and
//! exclusive (every gang-executed point lands in exactly one of
//! {lane batch, scalar fallback}), and lane batching changes no engine
//! result.

use proptest::prelude::*;
use wpsdm::cache::{DCachePolicy, ICachePolicy, L1Config};
use wpsdm::cpu::{run_lane_batch, CpuConfig, LaneMember, Processor, MAX_LANES};
use wpsdm::experiments::{run_all_plan, MachineConfig, RunOptions, SimEngine, SimPlan, SimPoint};
use wpsdm::workloads::{Benchmark, IterBlockSource, TraceConfig, TraceGenerator, WorkloadSpec};

/// The lane-free parameters of one member, drawn as indices into small
/// palettes: (d base latency, prediction-table size, i-assoc, i-policy,
/// issue width). The shared d-cache tag geometry — the batch key — is
/// applied when the member is built, so every member of a batch agrees.
type MemberDraw = ((u64, usize), (usize, usize, usize));

fn arb_member() -> impl Strategy<Value = MemberDraw> {
    (
        (1u64..=3, 0usize..3),
        (0usize..4, 0usize..ICachePolicy::all().len(), 0usize..2),
    )
}

fn build_member(d_assoc: usize, draw: MemberDraw) -> LaneMember {
    let ((d_latency, pt), (i_assoc, ipolicy, wide)) = draw;
    LaneMember {
        cpu: CpuConfig {
            issue_width: [4, 8][wide],
            ..CpuConfig::default()
        },
        l1d: L1Config::paper_dcache()
            .with_associativity(d_assoc)
            .with_base_latency(d_latency)
            .with_prediction_table_entries([64, 256, 1024][pt]),
        l1i: L1Config::paper_icache().with_associativity([1, 2, 4, 8][i_assoc]),
        ipolicy: ICachePolicy::all()[ipolicy],
    }
}

/// An arbitrary lane batch: a policy from the full set, a shared geometry,
/// and 1..=MAX_LANES members (so partial widths and the width-1 degenerate
/// batch are exercised alongside full batches).
fn arb_batch() -> impl Strategy<Value = (DCachePolicy, Vec<LaneMember>)> {
    (
        0usize..DCachePolicy::all().len(),
        0usize..2,
        prop::collection::vec(arb_member(), 1..MAX_LANES + 1),
    )
        .prop_map(|(policy, geometry, draws)| {
            let d_assoc = [2, 4][geometry];
            (
                DCachePolicy::all()[policy],
                draws
                    .into_iter()
                    .map(|draw| build_member(d_assoc, draw))
                    .collect(),
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The tentpole safety property: a lane batch of any shape produces,
    /// lane for lane, exactly the result a scalar run of that
    /// configuration produces over the same op stream.
    #[test]
    fn lane_batches_match_scalar_runs(batch in arb_batch(), seed in 0u64..4) {
        let (policy, members) = batch;
        let config = TraceConfig::new(Benchmark::Gcc)
            .with_ops(3_000)
            .with_seed(seed);
        let batched = run_lane_batch(
            policy,
            &members,
            &mut IterBlockSource(TraceGenerator::new(config)),
        )
        .expect("members share a valid geometry");
        prop_assert_eq!(batched.len(), members.len());
        for (lane, member) in members.iter().enumerate() {
            let scalar = Processor::with_l1(
                member.cpu,
                member.l1d,
                policy,
                member.l1i,
                member.ipolicy,
            )
            .expect("valid configuration")
            .run(TraceGenerator::new(config));
            prop_assert!(
                batched[lane].exact_eq(&scalar),
                "{:?} lane {} of {} diverged: {:?}",
                policy,
                lane,
                members.len(),
                batched[lane].diff(&scalar)
            );
        }
    }
}

/// A plan whose gangs contain both lane-batchable groups (three members
/// sharing the baseline d-geometry) and structurally divergent members
/// that must fall back to the scalar path (a different associativity and a
/// different policy-singleton).
fn mixed_shape_plan(options: RunOptions) -> SimPlan {
    let baseline = MachineConfig::baseline();
    let mut plan = SimPlan::new();
    for workload in [
        WorkloadSpec::Benchmark(Benchmark::Gcc),
        WorkloadSpec::Benchmark(Benchmark::Swim),
    ] {
        // Three members sharing (policy, geometry): one width-3 lane batch.
        plan.add(SimPoint::with_workload(workload.clone(), baseline, options));
        plan.add(SimPoint::with_workload(
            workload.clone(),
            baseline.with_l1d(L1Config::paper_dcache().with_base_latency(2)),
            options,
        ));
        plan.add(SimPoint::with_workload(
            workload.clone(),
            baseline.with_ipolicy(ICachePolicy::WayPredict),
            options,
        ));
        // Divergent tag geometry: same policy, not batchable with the
        // group above.
        plan.add(SimPoint::with_workload(
            workload.clone(),
            baseline.with_l1d(L1Config::paper_dcache().with_associativity(2)),
            options,
        ));
        // A policy singleton: nothing to batch with.
        plan.add(SimPoint::with_workload(
            workload.clone(),
            baseline.with_dpolicy(DCachePolicy::Sequential),
            options,
        ));
    }
    plan
}

#[test]
fn lane_partition_is_exhaustive_and_exclusive() {
    let options = RunOptions::quick().with_ops(2_000);
    let plan = mixed_shape_plan(options);
    let unique = plan.unique_points().len();
    let matrix = SimEngine::new(2).run(&plan);

    // Every gang-executed point lands in exactly one of {lane batch,
    // scalar fallback}: the two counters partition the executed points.
    assert_eq!(matrix.executed_points(), unique);
    assert_eq!(
        matrix.lane_points() + matrix.lane_scalar_fallback(),
        unique,
        "lane partition must cover every executed point exactly once"
    );
    // Two workloads, each with one width-3 batch and two fallbacks.
    assert_eq!(matrix.lane_batches(), 2);
    assert_eq!(matrix.lane_points(), 6);
    assert_eq!(matrix.lane_scalar_fallback(), 4);

    // The histogram is consistent with both counters: no width-0/1
    // "batches", batch count and width-weighted point count both match.
    let histogram = matrix.lane_width_histogram();
    assert_eq!(histogram[0], 0);
    assert_eq!(histogram[1], 0);
    assert_eq!(histogram.iter().sum::<usize>(), matrix.lane_batches());
    assert_eq!(
        histogram
            .iter()
            .enumerate()
            .map(|(width, batches)| width * batches)
            .sum::<usize>(),
        matrix.lane_points()
    );
}

#[test]
fn full_run_all_plan_partitions_under_lanes() {
    let options = RunOptions::quick().with_ops(1_000);
    let plan = run_all_plan(&options);
    let unique = plan.unique_points().len();
    let matrix = SimEngine::new(2).run(&plan);
    assert_eq!(matrix.executed_points(), unique);
    assert_eq!(matrix.lane_points() + matrix.lane_scalar_fallback(), unique);
    assert!(
        matrix.lane_batches() > 0,
        "the run_all plan must produce at least one lane batch"
    );
}

#[test]
fn disabling_lanes_zeroes_the_counters_and_changes_nothing() {
    let options = RunOptions::quick().with_ops(2_000);
    let plan = mixed_shape_plan(options);
    let lanes_on = SimEngine::new(2).run(&plan);
    let lanes_off = SimEngine::new(2).without_lanes().run(&plan);
    let serial = SimEngine::serial().run(&plan);

    assert_eq!(lanes_off.lane_batches(), 0);
    assert_eq!(lanes_off.lane_points(), 0);
    assert_eq!(lanes_off.lane_scalar_fallback(), 0);

    for point in plan.unique_points() {
        let on = lanes_on.require_workload(&point.workload, &point.machine, &point.options);
        let off = lanes_off.require_workload(&point.workload, &point.machine, &point.options);
        let ser = serial.require_workload(&point.workload, &point.machine, &point.options);
        assert_eq!(on, off, "lanes on vs off diverged at {}", point.workload);
        assert_eq!(on, ser, "lanes on vs serial diverged at {}", point.workload);
    }
}
