//! Cross-crate integration tests: drive the full stack (workload generator →
//! out-of-order core → prediction-augmented caches → energy models) the way
//! the examples and experiment binaries do, and assert the paper's
//! qualitative results.

use wpsdm::cache::{DCacheController, DCachePolicy, ICacheController, ICachePolicy, L1Config};
use wpsdm::cpu::{CpuConfig, Processor, SimResult};
use wpsdm::energy::ProcessorEnergyModel;
use wpsdm::mem::{HierarchyConfig, MemoryHierarchy};
use wpsdm::predictors::HybridBranchPredictor;
use wpsdm::workloads::{Benchmark, TraceConfig, TraceGenerator};

const OPS: usize = 60_000;

fn simulate(benchmark: Benchmark, dpolicy: DCachePolicy, ipolicy: ICachePolicy) -> SimResult {
    let dcache = DCacheController::new(L1Config::paper_dcache(), dpolicy).expect("valid config");
    let icache = ICacheController::new(L1Config::paper_icache(), ipolicy).expect("valid config");
    let hierarchy = MemoryHierarchy::new(HierarchyConfig::default()).expect("valid config");
    let mut cpu = Processor::new(
        CpuConfig::default(),
        dcache,
        icache,
        hierarchy,
        HybridBranchPredictor::default(),
    );
    cpu.run(TraceGenerator::new(
        TraceConfig::new(benchmark).with_ops(OPS),
    ))
}

#[test]
fn selective_dm_waypredict_beats_parallel_on_energy_delay() {
    for benchmark in [Benchmark::Gcc, Benchmark::Vortex, Benchmark::Applu] {
        let baseline = simulate(benchmark, DCachePolicy::Parallel, ICachePolicy::Parallel);
        let technique = simulate(
            benchmark,
            DCachePolicy::SelDmWayPredict,
            ICachePolicy::Parallel,
        );
        let metrics = technique.dcache_relative_to(&baseline);
        assert!(
            metrics.energy_delay_savings() > 0.4,
            "{benchmark}: savings {}",
            metrics.energy_delay_savings()
        );
        assert!(
            technique.performance_degradation_vs(&baseline) < 0.10,
            "{benchmark}: degradation {}",
            technique.performance_degradation_vs(&baseline)
        );
    }
}

#[test]
fn sequential_access_saves_energy_but_degrades_more_than_selective_dm() {
    let baseline = simulate(
        Benchmark::Li,
        DCachePolicy::Parallel,
        ICachePolicy::Parallel,
    );
    let sequential = simulate(
        Benchmark::Li,
        DCachePolicy::Sequential,
        ICachePolicy::Parallel,
    );
    let seldm = simulate(
        Benchmark::Li,
        DCachePolicy::SelDmSequential,
        ICachePolicy::Parallel,
    );
    let seq_degradation = sequential.performance_degradation_vs(&baseline);
    let seldm_degradation = seldm.performance_degradation_vs(&baseline);
    assert!(
        seq_degradation > seldm_degradation,
        "sequential ({seq_degradation}) must degrade more than selective-DM ({seldm_degradation})"
    );
    assert!(sequential.dcache_relative_to(&baseline).energy_savings() > 0.5);
}

#[test]
fn icache_way_prediction_cuts_icache_energy_without_slowing_down() {
    let baseline = simulate(
        Benchmark::M88ksim,
        DCachePolicy::Parallel,
        ICachePolicy::Parallel,
    );
    let technique = simulate(
        Benchmark::M88ksim,
        DCachePolicy::Parallel,
        ICachePolicy::WayPredict,
    );
    let metrics = technique.icache_relative_to(&baseline);
    assert!(
        metrics.energy_delay_savings() > 0.4,
        "i-cache savings {}",
        metrics.energy_delay_savings()
    );
    assert!(technique.icache.way_prediction_accuracy() > 0.8);
    assert!(technique.performance_degradation_vs(&baseline).abs() < 0.05);
}

#[test]
fn combined_techniques_reduce_overall_processor_energy_delay() {
    let model = ProcessorEnergyModel::default();
    let mut savings = Vec::new();
    for benchmark in [Benchmark::Perl, Benchmark::Troff, Benchmark::Swim] {
        let baseline = simulate(benchmark, DCachePolicy::Parallel, ICachePolicy::Parallel);
        let technique = simulate(
            benchmark,
            DCachePolicy::SelDmWayPredict,
            ICachePolicy::WayPredict,
        );
        let metrics = technique.processor_relative_to(&baseline, &model);
        savings.push(metrics.energy_delay_savings());
        // The L1s are a bounded share of processor energy, so overall
        // savings are far smaller than the per-cache savings.
        assert!(
            metrics.energy_savings() < 0.25,
            "{benchmark}: implausibly large overall savings"
        );
    }
    let average = savings.iter().sum::<f64>() / savings.len() as f64;
    assert!(
        average > 0.0,
        "combined techniques should reduce overall energy-delay, got {savings:?}"
    );
}

#[test]
fn perfect_way_prediction_bounds_the_realisable_policies() {
    let baseline = simulate(
        Benchmark::Gcc,
        DCachePolicy::Parallel,
        ICachePolicy::Parallel,
    );
    let perfect = simulate(
        Benchmark::Gcc,
        DCachePolicy::PerfectWayPredict,
        ICachePolicy::Parallel,
    );
    let real = simulate(
        Benchmark::Gcc,
        DCachePolicy::SelDmWayPredict,
        ICachePolicy::Parallel,
    );
    let perfect_savings = perfect.dcache_relative_to(&baseline).energy_delay_savings();
    let real_savings = real.dcache_relative_to(&baseline).energy_delay_savings();
    assert!(
        perfect_savings >= real_savings - 0.02,
        "perfect ({perfect_savings}) must bound the realisable policy ({real_savings})"
    );
}

#[test]
fn facade_reexports_compose() {
    // The facade paths used throughout the examples must stay valid.
    let geometry = wpsdm::mem::CacheGeometry::new(16 * 1024, 32, 4).expect("valid geometry");
    let model = wpsdm::energy::CacheEnergyModel::new(geometry);
    let table = wpsdm::energy::RelativeEnergyTable::from_model(&model);
    assert!(table.single_way_read < 0.3);
    let profile = wpsdm::workloads::Benchmark::Swim.profile();
    assert!(profile.paper_sa_miss_rate > profile.paper_dm_miss_rate);
}
