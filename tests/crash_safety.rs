//! The crash harness: drives sweeps through arbitrary fault schedules and
//! abort points and holds the hardened matrix cache to its three
//! invariants (`docs/RELIABILITY.md`):
//!
//! 1. **never torn** — every on-disk record either decodes bit-identically
//!    to the freshly simulated result or misses; no fault schedule can make
//!    a corrupted record *serve*;
//! 2. **warm ≡ cold** — a post-crash warm run produces results
//!    bit-identical to a cold (uncached) run, and a run after that executes
//!    zero simulations;
//! 3. **output identity** — the full `run_all` artefact JSON rendered over
//!    a fault-injected cache is byte-identical to `--no-matrix-cache`.
//!
//! The schedules are deterministic ([`FaultyIo`]): every failing seed
//! reproduces exactly.

use std::path::PathBuf;
use std::sync::Arc;

use proptest::prelude::*;
use wpsdm::cache::DCachePolicy;
use wpsdm::experiments::engine::{SimEngine, SimPlan};
use wpsdm::experiments::matrix_cache::MatrixCache;
use wpsdm::experiments::storage::{FaultPlan, FaultyIo};
use wpsdm::experiments::{report, run_all_plan, table3, MachineConfig, RunOptions, SimPoint};
use wpsdm::workloads::Benchmark;

fn tiny() -> RunOptions {
    RunOptions::quick().with_ops(1_500)
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("wpsdm-crash-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A small mixed plan: two benchmarks × two d-cache policies — four
/// records' worth of cache traffic, enough operations for any abort point
/// or fault schedule to land somewhere interesting.
fn small_plan(options: RunOptions) -> SimPlan {
    let mut plan = SimPlan::new();
    for benchmark in [Benchmark::Gcc, Benchmark::Li] {
        for dpolicy in [DCachePolicy::Parallel, DCachePolicy::SelDmWayPredict] {
            plan.add(SimPoint::new(
                benchmark,
                MachineConfig::baseline().with_dpolicy(dpolicy),
                options,
            ));
        }
    }
    plan
}

/// Asserts every result in `matrix` is bit-identical to `reference`.
fn assert_matches_reference(
    reference: &wpsdm::experiments::SimMatrix,
    matrix: &wpsdm::experiments::SimMatrix,
    plan: &SimPlan,
    context: &str,
) {
    for point in plan.unique_points() {
        let expected = reference.require_workload(&point.workload, &point.machine, &point.options);
        let actual = matrix.require_workload(&point.workload, &point.machine, &point.options);
        assert_eq!(
            expected, actual,
            "{context}: {} on {:?} diverged from the uncached reference",
            point.workload, point.machine.dpolicy
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Invariants 1+2 under seeded fault schedules: with every I/O
    /// operation failing with probability up to 40% — torn writes
    /// included — a cold pass and a warm pass over the same (battered)
    /// cache both produce results bit-identical to an uncached run.
    #[test]
    fn seeded_fault_schedules_never_corrupt_results(
        seed in 0u64..u64::MAX,
        permille in 0u32..400,
    ) {
        let options = tiny();
        let plan = small_plan(options);
        let reference = SimEngine::serial().run(&plan);

        let dir = std::env::temp_dir().join(format!(
            "wpsdm-crash-seeded-{}-{seed}-{permille}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = MatrixCache::with_io(&dir, Arc::new(FaultyIo::seeded(seed, permille)));
        let engine = SimEngine::serial().with_matrix_cache(cache);

        // Cold: every store races the fault schedule.
        let cold = engine.run(&plan);
        assert_matches_reference(&reference, &cold, &plan, "cold faulty pass");

        // Warm: loads race it too — a hit must be bit-identical, a torn or
        // lost record must miss and re-simulate, never serve garbage.
        let warm = engine.run(&plan);
        assert_matches_reference(&reference, &warm, &plan, "warm faulty pass");
        prop_assert_eq!(
            warm.executed_points() + warm.cache_hits(),
            plan.unique_points().len()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Invariant 2 at every abort point: the process dies mid-sweep (from
    /// operation `abort_op` on, every I/O call fails, cleanup included,
    /// with `tear` bytes of any aborted write left on disk). A successor
    /// process over the same directory must recover: its warm run equals a
    /// cold run, sweeps all debris, and a third run executes nothing.
    #[test]
    fn any_abort_point_recovers_to_a_consistent_cache(
        abort_op in 0u64..40,
        tear in 0usize..64,
    ) {
        let options = tiny();
        let plan = small_plan(options);
        let unique = plan.unique_points().len();
        let reference = SimEngine::serial().run(&plan);

        let dir = std::env::temp_dir().join(format!(
            "wpsdm-crash-abort-{}-{abort_op}-{tear}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);

        // The doomed process: aborts at `abort_op`, stranding whatever it
        // was doing. Its own results must still be correct — the cache is
        // best-effort even while dying.
        let doomed_cache = MatrixCache::with_io(
            &dir,
            Arc::new(FaultyIo::with_plan(FaultPlan::new().abort_at(abort_op, tear))),
        );
        let doomed = SimEngine::serial()
            .with_matrix_cache(doomed_cache)
            .run(&plan);
        assert_matches_reference(&reference, &doomed, &plan, "doomed process");

        // The successor process: clean filesystem I/O over the crashed
        // directory. Startup recovery sweeps the debris; the warm run
        // equals a cold run bit for bit.
        let successor = SimEngine::serial().with_matrix_cache(MatrixCache::new(&dir));
        let warm = successor.run(&plan);
        assert_matches_reference(&reference, &warm, &plan, "post-crash warm run");
        prop_assert_eq!(warm.executed_points() + warm.cache_hits(), unique);

        // No tmp debris survives the successor.
        if let Ok(entries) = std::fs::read_dir(&dir) {
            for entry in entries {
                let name = entry.expect("entry").file_name().to_string_lossy().into_owned();
                prop_assert!(
                    !name.contains(".tmp"),
                    "stranded tmp file `{}` survived recovery",
                    name
                );
            }
        }

        // And now the cache is fully consistent: a third run simulates
        // nothing at all.
        let third = successor.run(&plan);
        prop_assert_eq!(third.executed_points(), 0);
        prop_assert_eq!(third.cache_hits(), unique);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Invariant 3: the rendered artefact JSON — the repo's actual output — is
/// byte-identical between a fault-injected cached sweep (cold, then warm
/// over the battered cache) and an uncached one, over the full `run_all`
/// union plan.
#[test]
fn run_all_artefacts_are_byte_identical_under_faults() {
    let options = RunOptions::quick().with_ops(2_000);
    let plan = run_all_plan(&options);
    let uncached = SimEngine::default().run(&plan);
    let expected = report::to_json(&table3::from_matrix(&uncached, &options));

    let dir = temp_dir("artefacts");
    let cache = MatrixCache::with_io(&dir, Arc::new(FaultyIo::seeded(0xfa_17ed, 150)));
    let engine = SimEngine::default().with_matrix_cache(cache);
    for pass in ["cold", "warm"] {
        let matrix = engine.run(&plan);
        assert_matches_reference(&uncached, &matrix, &plan, pass);
        let rendered = report::to_json(&table3::from_matrix(&matrix, &options));
        assert_eq!(
            expected, rendered,
            "{pass}: rendered artefact JSON must be byte-identical under faults"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
