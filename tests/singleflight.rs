//! Property tests for cross-request singleflight
//! ([`wpsdm::experiments::PointService`]): however many concurrent callers
//! stampede on however many (possibly duplicate) points, the number of
//! simulations executed equals the number of *unique* points, and every
//! caller of the same point observes byte-identical results.
//!
//! These are the daemon's coalescing guarantees stripped of the socket
//! layer; `crates/serve/tests/service.rs` re-asserts them end-to-end over
//! the wire.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use proptest::prelude::*;
use wpsdm::cpu::SimResult;
use wpsdm::experiments::{
    CancelToken, FlightOutcome, MachineConfig, MatrixCache, PointService, RunOptions, SimPoint,
};
use wpsdm::workloads::Benchmark;

/// The small pool of distinct points a stampede draws from: two benchmarks
/// × two op counts, all finishing in milliseconds.
fn pool() -> Vec<SimPoint> {
    [Benchmark::Gcc, Benchmark::Li]
        .into_iter()
        .flat_map(|benchmark| {
            [1_200usize, 1_700].into_iter().map(move |ops| {
                SimPoint::new(
                    benchmark,
                    MachineConfig::baseline(),
                    RunOptions::quick().with_ops(ops),
                )
            })
        })
        .collect()
}

/// Runs one caller thread per assignment, all released together, each
/// driving its assigned point through [`PointService::run_point`]. Returns
/// the outcomes in assignment order.
fn stampede(service: &PointService, assignments: &[SimPoint]) -> Vec<FlightOutcome> {
    let barrier = std::sync::Barrier::new(assignments.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = assignments
            .iter()
            .map(|point| {
                scope.spawn(|| {
                    barrier.wait();
                    service.run_point(point, &CancelToken::never())
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("stampede caller panicked"))
            .collect()
    })
}

fn done(outcome: FlightOutcome) -> Arc<SimResult> {
    let FlightOutcome::Done(result) = outcome else {
        panic!("uncancelled runs complete");
    };
    result
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// K concurrent callers of one identical point: every caller either
    /// leads or coalesces onto an in-flight leader (no third path), and
    /// all K results are bit-identical.
    #[test]
    fn identical_stampedes_coalesce_and_share_bytes(callers in 2usize..9) {
        let service = PointService::new();
        let point = pool().remove(0);
        let assignments = vec![point; callers];
        let outcomes = stampede(&service, &assignments);
        let executed = service.executed();
        prop_assert!(
            executed >= 1 && executed <= callers as u64,
            "{} executions for {} callers",
            executed,
            callers
        );
        prop_assert_eq!(
            executed + service.coalesced(),
            callers as u64,
            "every caller either led or followed"
        );
        let results: Vec<Arc<SimResult>> = outcomes.into_iter().map(done).collect();
        for result in &results[1..] {
            prop_assert!(
                results[0].exact_eq(result),
                "a stampeder observed different bytes"
            );
        }
    }

    /// A mixed interleaving of identical and distinct points: per-point
    /// byte-identity holds across all callers, and with a shared cache the
    /// total executions equal the number of unique points — duplicates are
    /// either coalesced in flight or served warm, never re-simulated.
    #[test]
    fn mixed_stampedes_execute_each_unique_point_once(
        picks in proptest::collection::vec(0usize..4, 2..10),
    ) {
        let dir = std::env::temp_dir().join(format!(
            "wpsdm-singleflight-{}-{}",
            std::process::id(),
            picks.iter().map(usize::to_string).collect::<String>(),
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let service = PointService::with_cache(MatrixCache::new(&dir));
        let pool = pool();
        let assignments: Vec<SimPoint> = picks.iter().map(|&i| pool[i].clone()).collect();
        let unique: HashSet<&SimPoint> = assignments.iter().collect();
        let outcomes = stampede(&service, &assignments);

        prop_assert_eq!(
            service.executed(),
            unique.len() as u64,
            "with a cache, every unique point simulates exactly once \
             (coalesced {}, cache hits {})",
            service.coalesced(),
            service.cache_hits()
        );
        let mut by_point: HashMap<&SimPoint, Arc<SimResult>> = HashMap::new();
        for (point, outcome) in assignments.iter().zip(outcomes) {
            let result = done(outcome);
            match by_point.get(point) {
                None => {
                    by_point.insert(point, result);
                }
                Some(reference) => prop_assert!(
                    reference.exact_eq(&result),
                    "callers of {:?} observed different bytes",
                    point
                ),
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
