//! Differential conformance: the optimized stack vs. the `wp-oracle`
//! reference simulator, asserted bit for bit ([`SimResult::exact_eq`]).
//!
//! The binary `conformance` drives the full 253-point `run_all` sweep and
//! a 200-pair random matrix in CI; these tests keep a fast always-on
//! slice of the same contract inside `cargo test`:
//!
//! * proptest strategies over associativity, sets, block size, latency,
//!   policies, core widths, and every workload family (benchmarks,
//!   parameterised scenarios);
//! * trace capture → replay through both backends;
//! * the shared-stream fan-out, including the spill path under a tiny cap.

use proptest::prelude::*;
use wpsdm::cache::{DCachePolicy, ICachePolicy, L1Config};
use wpsdm::cpu::CpuConfig;
use wpsdm::experiments::conformance::{
    check_point, oracle_simulate_shared, oracle_simulate_workload, random_points,
};
use wpsdm::experiments::{
    simulate_workload, MachineConfig, RunOptions, SimEngine, SimPlan, SimPoint,
};
use wpsdm::workloads::{Benchmark, Scenario, SharedStream, StreamKey, WorkloadSpec};

fn machine(
    l1: L1Config,
    dpolicy: DCachePolicy,
    ipolicy: ICachePolicy,
    cpu: CpuConfig,
) -> MachineConfig {
    MachineConfig {
        l1d: l1,
        l1i: l1,
        dpolicy,
        ipolicy,
        cpu,
    }
}

/// One exact-equality check, with a readable panic on divergence.
fn assert_conforms(workload: WorkloadSpec, machine: MachineConfig, options: RunOptions) {
    let optimized = simulate_workload(&workload, &machine, &options);
    let oracle = oracle_simulate_workload(&workload, &machine, &options);
    assert!(
        oracle.exact_eq(&optimized),
        "oracle and optimized stacks diverged on {workload} / {:?} / {:?}: fields {:?}",
        machine.dpolicy,
        options,
        oracle.diff(&optimized)
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random geometry × policy × workload points conform exactly.
    #[test]
    fn random_configurations_conform(
        sets_pow in 4u32..8,           // 16..=128 sets
        block_pow in 4u32..7,          // 16..=64-byte blocks
        assoc_pow in 0u32..4,          // direct-mapped..=8-way
        base_latency in 1u64..=2,
        dpolicy_index in 0usize..8,
        ipolicy_index in 0usize..2,
        workload_index in 0usize..14,
        ops in 1_200usize..3_000,
        seed in 0u64..1_000,
    ) {
        let sets = 1usize << sets_pow;
        let block = 1usize << block_pow;
        let assoc = 1usize << assoc_pow;
        let l1 = L1Config {
            size_bytes: sets * block * assoc,
            block_bytes: block,
            associativity: assoc,
            base_latency,
            extra_probe_latency: 1,
            prediction_table_entries: 256,
            victim_list_entries: 8,
        };
        let dpolicy = [
            DCachePolicy::Parallel,
            DCachePolicy::Sequential,
            DCachePolicy::WayPredictPc,
            DCachePolicy::WayPredictXor,
            DCachePolicy::SelDmParallel,
            DCachePolicy::SelDmWayPredict,
            DCachePolicy::SelDmSequential,
            DCachePolicy::PerfectWayPredict,
        ][dpolicy_index];
        let ipolicy = [ICachePolicy::Parallel, ICachePolicy::WayPredict][ipolicy_index];
        let workload = match workload_index {
            i if i < 11 => WorkloadSpec::Benchmark(Benchmark::all()[i]),
            11 => WorkloadSpec::Scenario(Scenario::pointer_chase()),
            12 => WorkloadSpec::Scenario(Scenario::strided_stream()),
            _ => WorkloadSpec::Scenario(Scenario::phase_mix()),
        };
        assert_conforms(
            workload,
            machine(l1, dpolicy, ipolicy, CpuConfig::default()),
            RunOptions { ops, seed },
        );
    }

    /// Narrow core windows and widths conform too (the scheduling loop's
    /// structural-gating paths, not just the cache model).
    #[test]
    fn random_core_shapes_conform(
        fetch_width in 1usize..=8,
        rob_entries in 8usize..=64,
        lsq_entries in 4usize..=32,
        seed in 0u64..1_000,
    ) {
        let cpu = CpuConfig {
            fetch_width,
            rob_entries,
            lsq_entries,
            ..CpuConfig::default()
        };
        assert_conforms(
            WorkloadSpec::Benchmark(Benchmark::Gcc),
            machine(
                L1Config::paper_dcache(),
                DCachePolicy::SelDmWayPredict,
                ICachePolicy::WayPredict,
                cpu,
            ),
            RunOptions { ops: 2_000, seed },
        );
    }

    /// Parameterised scenario knobs (ring sizes, strides, conflict
    /// pressure, phase lengths) conform.
    #[test]
    fn random_scenario_parameters_conform(
        nodes in 2u32..512,
        node_stride in 1u32..256,
        stride in 1u32..128,
        conflict_permille in 0u16..=1000,
        phase_ops in 1u32..4_000,
        which in 0usize..3,
        seed in 0u64..1_000,
    ) {
        let scenario = match which {
            0 => Scenario::PointerChase { nodes, node_stride },
            1 => Scenario::StridedStream { stride, conflict_permille },
            _ => Scenario::PhaseMix { phase_ops },
        };
        assert_conforms(
            WorkloadSpec::Scenario(scenario),
            MachineConfig::baseline().with_dpolicy(DCachePolicy::SelDmSequential),
            RunOptions { ops: 1_500, seed },
        );
    }
}

/// The seeded sampler the `conformance` binary uses feeds the same
/// exact-equality contract (a fast slice of the binary's `--random 200`).
#[test]
fn sampled_random_points_conform() {
    for point in random_points(8, 2026, &[]) {
        let report = check_point(&point);
        assert!(
            report.matches(),
            "random point diverged: {} / {:?}: fields {:?}",
            point.workload,
            point.machine,
            report.diff
        );
    }
}

/// A captured trace replays identically through both backends — the trace
/// identity (content digest) and decoder feed the same stream to each.
#[test]
fn trace_replay_conforms() {
    let dir = std::env::temp_dir().join(format!("wpsdm-conformance-test-{}", std::process::id()));
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join("replay.wptr");
    let source = WorkloadSpec::Benchmark(Benchmark::Vortex)
        .stream(3_000, 5)
        .expect("generated");
    wpsdm::workloads::capture_to_file(source, &path, "conformance test").expect("capture");
    let spec = WorkloadSpec::from_trace_file(&path).expect("opens");
    for dpolicy in [DCachePolicy::Parallel, DCachePolicy::SelDmWayPredict] {
        assert_conforms(
            spec.clone(),
            MachineConfig::baseline().with_dpolicy(dpolicy),
            RunOptions {
                ops: 3_000,
                seed: 0,
            },
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// One materialized stream fans out to both backends — in memory and
/// through the spill codec under a 1-byte cap — and the four results
/// (optimized/oracle × resident/spilled) are all bit-identical.
#[test]
fn shared_stream_fan_out_conforms_resident_and_spilled() {
    let key = StreamKey::new(WorkloadSpec::Benchmark(Benchmark::Swim), 2_500, 9);
    let machine = MachineConfig::baseline().with_dpolicy(DCachePolicy::WayPredictPc);
    let options = RunOptions {
        ops: 2_500,
        seed: 9,
    };

    let resident = SharedStream::materialize_capped(&key, usize::MAX).expect("fits");
    assert!(!resident.is_spilled());
    let spilled = SharedStream::materialize_capped(&key, 1).expect("spills");
    assert!(spilled.is_spilled());

    let live = simulate_workload(&key.spec, &machine, &options);
    for stream in [&resident, &spilled] {
        let optimized = wpsdm::experiments::runner::simulate_workload_shared(stream, &machine);
        let oracle = oracle_simulate_shared(stream, &machine);
        assert!(optimized.exact_eq(&live), "shared optimized != live");
        assert!(oracle.exact_eq(&live), "oracle over shared stream != live");
    }
}

/// The engine honours a tiny stream cap end to end: every gang stream
/// spills, and the matrix is bit-identical to the uncapped engine's.
#[test]
fn engine_stream_cap_preserves_results() {
    let options = RunOptions::quick().with_ops(2_000);
    let mut plan = SimPlan::new();
    for benchmark in [Benchmark::Gcc, Benchmark::Li] {
        for dpolicy in [DCachePolicy::Parallel, DCachePolicy::SelDmWayPredict] {
            plan.add(SimPoint::new(
                benchmark,
                MachineConfig::baseline().with_dpolicy(dpolicy),
                options,
            ));
        }
    }
    let uncapped = SimEngine::new(2).run(&plan);
    let capped = SimEngine::new(2).with_stream_memory_cap(1).run(&plan);
    for point in plan.unique_points() {
        assert_eq!(
            uncapped.require_workload(&point.workload, &point.machine, &point.options),
            capped.require_workload(&point.workload, &point.machine, &point.options),
            "a spilled gang stream changed a result"
        );
    }
}
