//! Tests for the adversarial workload generators and profile machinery:
//!
//! * proptests — per-seed determinism of every adversarial generator,
//!   lane ≡ scalar ≡ oracle bit-identity across all seven concrete
//!   d-cache policies, and spill-path byte-identity under a 1-byte
//!   stream cap;
//! * design-intent checks — way-alias thrash degrades the PC way
//!   predictor's first-hit rate versus a well-behaved baseline, and the
//!   conflict chase's miss rate falls off a cliff exactly when the
//!   rotation exceeds the associativity;
//! * the committed CI profile (`tests/profiles/stress.json`) parses to
//!   the built-in stress tier.

use proptest::prelude::*;
use wpsdm::cache::DCachePolicy;
use wpsdm::experiments::conformance::oracle_simulate_workload;
use wpsdm::experiments::{
    simulate_workload, MachineConfig, RunOptions, SimEngine, SimPlan, SimPoint,
};
use wpsdm::workloads::{ProfileSpec, ProfileTier, Scenario, SharedStream, StreamKey, WorkloadSpec};

/// Draws one adversarial scenario with arbitrary (valid) knobs: `which`
/// picks the family, the two knobs are reinterpreted per family.
fn arb_adversarial() -> impl Strategy<Value = Scenario> {
    (0usize..3, 1u32..4096, 1u32..10).prop_map(|(which, size, width)| match which {
        0 => Scenario::WayAliasThrash {
            table_entries: size.min(2048),
            group: width,
        },
        1 => Scenario::PhaseFlip {
            period_ops: size,
            conflict_ways: width,
        },
        _ => Scenario::ConflictChase { blocks: width },
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The same (scenario, ops, seed) always generates the same micro-op
    /// stream — the adversarial generators are pure functions of the seed.
    #[test]
    fn adversarial_generators_are_deterministic_per_seed(
        scenario in arb_adversarial(),
        ops in 200usize..2_000,
        seed in 0u64..1_000,
    ) {
        let spec = WorkloadSpec::Scenario(scenario);
        let a: Vec<_> = spec.stream(ops, seed).expect("generated").collect();
        let b: Vec<_> = spec.stream(ops, seed).expect("generated").collect();
        prop_assert_eq!(a, b);
    }

    /// Every adversarial generator conforms — optimized stack ≡ oracle,
    /// bit for bit — under each of the seven concrete d-cache policies.
    #[test]
    fn adversarial_scenarios_conform_across_policies(
        scenario in arb_adversarial(),
        policy_index in 0usize..DCachePolicy::all().len(),
        ops in 500usize..2_500,
        seed in 0u64..1_000,
    ) {
        let workload = WorkloadSpec::Scenario(scenario);
        let machine =
            MachineConfig::baseline().with_dpolicy(DCachePolicy::all()[policy_index]);
        let options = RunOptions { ops, seed };
        let optimized = simulate_workload(&workload, &machine, &options);
        let oracle = oracle_simulate_workload(&workload, &machine, &options);
        prop_assert!(
            oracle.exact_eq(&optimized),
            "oracle and optimized stacks diverged on {} / {:?}: fields {:?}",
            workload,
            machine.dpolicy,
            oracle.diff(&optimized)
        );
    }
}

/// Lane-batched engine runs of an adversarial profile are bit-identical
/// to scalar (no-gang, no-lane) runs for every policy × scenario pair.
#[test]
fn lane_batches_match_scalar_on_adversarial_profiles() {
    let options = RunOptions {
        ops: 2_000,
        seed: 11,
    };
    let profile = ProfileSpec::builtin(ProfileTier::Adversarial);
    let mut plan = SimPlan::new();
    for workload in profile.workloads() {
        for policy in DCachePolicy::all() {
            plan.add(SimPoint::with_workload(
                workload.clone(),
                MachineConfig::baseline().with_dpolicy(policy),
                options,
            ));
        }
    }
    let laned = SimEngine::new(2).run(&plan);
    let scalar = SimEngine::new(2).without_gang().without_lanes().run(&plan);
    for point in plan.unique_points() {
        let a = laned.require_workload(&point.workload, &point.machine, &point.options);
        let b = scalar.require_workload(&point.workload, &point.machine, &point.options);
        assert!(
            a.exact_eq(b),
            "lane and scalar runs diverged on {} / {:?}: fields {:?}",
            point.workload,
            point.machine.dpolicy,
            a.diff(b)
        );
    }
}

/// An adversarial stream fans out byte-identically through the spill
/// codec: resident and 1-byte-cap spilled materializations reproduce the
/// live simulation exactly, through both backends.
#[test]
fn adversarial_streams_survive_the_spill_path() {
    let spec = WorkloadSpec::Scenario(Scenario::PhaseFlip {
        period_ops: 256,
        conflict_ways: 8,
    });
    let options = RunOptions {
        ops: 2_000,
        seed: 7,
    };
    let machine = MachineConfig::baseline().with_dpolicy(DCachePolicy::SelDmWayPredict);
    let key = StreamKey::new(spec.clone(), options.ops, options.seed);

    let resident = SharedStream::materialize_capped(&key, usize::MAX).expect("fits");
    assert!(!resident.is_spilled());
    let spilled = SharedStream::materialize_capped(&key, 1).expect("spills");
    assert!(spilled.is_spilled());

    let live = simulate_workload(&spec, &machine, &options);
    for stream in [&resident, &spilled] {
        let optimized = wpsdm::experiments::runner::simulate_workload_shared(stream, &machine);
        let oracle = wpsdm::experiments::conformance::oracle_simulate_shared(stream, &machine);
        assert!(optimized.exact_eq(&live), "shared optimized != live");
        assert!(oracle.exact_eq(&live), "oracle over shared stream != live");
    }
}

/// The fraction of way-predicted loads that probed the wrong way first.
fn first_probe_miss_rate(scenario: Scenario) -> f64 {
    let machine = MachineConfig::baseline().with_dpolicy(DCachePolicy::WayPredictPc);
    let options = RunOptions {
        ops: 4_000,
        seed: 42,
    };
    let result = simulate_workload(&WorkloadSpec::Scenario(scenario), &machine, &options);
    let wrong = result.dcache.mispredicted_accesses as f64;
    let right = result.dcache.single_way_load_hits as f64;
    wrong / (wrong + right).max(1.0)
}

/// Design intent: way-alias thrash folds distinct PCs onto one
/// prediction-table entry, so its first-probe hit rate collapses relative
/// to a well-behaved strided baseline at the same scale.
#[test]
fn way_alias_thrash_degrades_first_hit_rate() {
    let baseline = first_probe_miss_rate(Scenario::strided_stream());
    let thrashed = first_probe_miss_rate(Scenario::WayAliasThrash {
        table_entries: 1024,
        group: 4,
    });
    assert!(
        thrashed > 2.0 * baseline && thrashed > 0.5,
        "alias thrash should collapse the first-probe hit rate: \
         thrashed {thrashed:.3} vs baseline {baseline:.3}"
    );
}

/// The d-cache demand miss rate of a conflict chase over `blocks` blocks.
fn chase_miss_rate(blocks: u32) -> f64 {
    let machine = MachineConfig::baseline();
    let options = RunOptions {
        ops: 4_000,
        seed: 42,
    };
    let result = simulate_workload(
        &WorkloadSpec::Scenario(Scenario::ConflictChase { blocks }),
        &machine,
        &options,
    );
    let d = &result.dcache;
    (d.load_misses + d.store_misses) as f64 / (d.loads + d.stores).max(1) as f64
}

/// Design intent: the chase's miss rate falls off a cliff exactly where
/// the rotation stops fitting the reference associativity (4-way): one
/// block under stays warm, one block over thrashes the LRU set endlessly.
#[test]
fn conflict_chase_miss_rate_cliff_sits_at_the_associativity() {
    let assoc = MachineConfig::baseline().l1d.associativity as u32;
    let under = chase_miss_rate(assoc - 1);
    let at = chase_miss_rate(assoc);
    let over = chase_miss_rate(assoc + 1);
    assert!(
        under < 0.05 && at < 0.05,
        "a chase within the associativity should stay warm after the cold \
         start: under {under:.3}, at {at:.3}"
    );
    // Each chase step is a load (which misses — the block was evicted a
    // full rotation ago) plus a dirtying store to the just-filled line
    // (which hits), so total thrash saturates at a 50% demand miss rate.
    assert!(
        over > 0.4,
        "one block over the associativity should thrash the LRU set on \
         every load: over {over:.3}"
    );
    assert!(
        over > 10.0 * at,
        "the cliff should be at least an order of magnitude: at {at:.3} \
         vs over {over:.3}"
    );
}

/// The committed CI profile parses and is exactly the built-in stress
/// tier, so the CI coverage job and the library can never disagree about
/// what "stress" means.
#[test]
fn committed_stress_profile_matches_the_builtin() {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/profiles/stress.json");
    let committed = ProfileSpec::load(&path).expect("committed profile parses");
    assert_eq!(committed, ProfileSpec::builtin(ProfileTier::Stress));
}
