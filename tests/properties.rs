//! Property-based tests (proptest) over the core data structures and
//! invariants: cache residency/consistency, LRU behaviour, predictor
//! bounds, energy-model monotonicity, trace determinism, and controller
//! accounting identities.

use proptest::prelude::*;
use wpsdm::cache::{DCacheController, DCachePolicy, L1Config};
use wpsdm::energy::CacheEnergyModel;
use wpsdm::mem::{AccessKind, CacheGeometry, Placement, SetAssocCache};
use wpsdm::predictors::{MappingPrediction, SaturatingCounter, SelDmPredictor, VictimList};
use wpsdm::workloads::{Benchmark, TraceConfig, TraceGenerator};

/// A strategy over valid L1-style geometries.
fn geometry_strategy() -> impl Strategy<Value = CacheGeometry> {
    (0usize..=3, 0usize..=2, 0usize..=3).prop_map(|(size, block, assoc)| {
        let size_bytes = (4 * 1024) << size; // 4K..32K
        let block_bytes = 16 << block; // 16..64
        let associativity = 1 << assoc; // 1..8
        CacheGeometry::new(size_bytes, block_bytes, associativity).expect("valid geometry")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// After any access the block is resident, and a probe finds it in the
    /// way the access reported.
    #[test]
    fn accessed_blocks_are_resident(
        geometry in geometry_strategy(),
        addrs in prop::collection::vec(0u64..0x10_0000, 1..200),
    ) {
        let mut cache = SetAssocCache::new(geometry);
        for addr in addrs {
            let result = cache.access(addr, AccessKind::Read, Placement::SetAssociative);
            prop_assert_eq!(cache.probe(addr), Some(result.way));
        }
    }

    /// The number of resident blocks never exceeds the capacity, whatever
    /// mix of placements is used.
    #[test]
    fn residency_never_exceeds_capacity(
        geometry in geometry_strategy(),
        ops in prop::collection::vec((0u64..0x4_0000, any::<bool>(), any::<bool>()), 1..300),
    ) {
        let mut cache = SetAssocCache::new(geometry);
        for (addr, write, direct) in ops {
            let kind = if write { AccessKind::Write } else { AccessKind::Read };
            let placement = if direct { Placement::DirectMapped } else { Placement::SetAssociative };
            cache.access(addr, kind, placement);
            prop_assert!(cache.resident_blocks() <= geometry.num_blocks());
        }
    }

    /// Hits plus misses always equals accesses, and the miss ratio stays in
    /// [0, 1].
    #[test]
    fn cache_stats_are_consistent(
        addrs in prop::collection::vec(0u64..0x8000, 1..300),
    ) {
        let geometry = CacheGeometry::new(4 * 1024, 32, 2).expect("valid geometry");
        let mut cache = SetAssocCache::new(geometry);
        for addr in &addrs {
            cache.access(*addr, AccessKind::Read, Placement::SetAssociative);
        }
        let stats = cache.stats();
        prop_assert_eq!(stats.accesses(), addrs.len() as u64);
        prop_assert!(stats.miss_ratio() >= 0.0 && stats.miss_ratio() <= 1.0);
        prop_assert!(stats.misses() <= stats.accesses());
    }

    /// The direct-mapping way is always a legal way index and depends only
    /// on the address bits above the set index.
    #[test]
    fn direct_mapped_way_is_legal(geometry in geometry_strategy(), addr in any::<u64>()) {
        let way = geometry.direct_mapped_way(addr);
        prop_assert!(way < geometry.associativity());
        let offset = (addr % geometry.block_bytes() as u64) as u64;
        prop_assert_eq!(way, geometry.direct_mapped_way(addr - offset));
    }

    /// Saturating counters never leave their range and is_high is consistent
    /// with the value.
    #[test]
    fn saturating_counter_stays_in_range(start in 0u8..=3, steps in prop::collection::vec(any::<bool>(), 0..64)) {
        let mut counter = SaturatingCounter::two_bit(start);
        for up in steps {
            if up { counter.increment() } else { counter.decrement() }
            prop_assert!(counter.value() <= 3);
            prop_assert_eq!(counter.is_high(), counter.value() >= 2);
        }
    }

    /// The selective-DM predictor flips to set-associative only after more
    /// set-associative hits than direct-mapped hits (within saturation).
    #[test]
    fn seldm_prediction_tracks_hit_history(events in prop::collection::vec(any::<bool>(), 0..32)) {
        let mut predictor = SelDmPredictor::new(64);
        let pc = 0x440;
        for sa_hit in &events {
            if *sa_hit {
                predictor.record_set_associative_hit(pc);
            } else {
                predictor.record_direct_mapped_hit(pc);
            }
        }
        let value = predictor.counter_value(pc);
        prop_assert!(value <= 3);
        let prediction = predictor.predict(pc);
        prop_assert_eq!(prediction == MappingPrediction::SetAssociative, value >= 2);
    }

    /// The victim list flags a block as conflicting if and only if it has
    /// been evicted more than the threshold number of times while tracked.
    #[test]
    fn victim_list_threshold_is_respected(evictions in 0u32..8, threshold in 0u32..4) {
        let mut list = VictimList::new(16, threshold);
        let block = 0xabc0;
        let mut flagged = false;
        for _ in 0..evictions {
            flagged = list.record_eviction(block);
        }
        prop_assert_eq!(list.is_conflicting(block), evictions > threshold);
        if evictions > 0 {
            prop_assert_eq!(flagged, evictions > threshold);
        }
    }

    /// Cache energy is monotonic in the number of ways probed, and a
    /// parallel read of an N-way cache costs more than any partial probe.
    #[test]
    fn energy_monotonic_in_ways_probed(geometry in geometry_strategy(), ways in 1usize..8) {
        let model = CacheEnergyModel::new(geometry);
        let ways = ways.min(geometry.associativity());
        if ways >= 1 {
            prop_assert!(model.n_way_read_energy(ways) <= model.n_way_read_energy(ways + 1));
        }
        prop_assert!(model.single_way_read_energy() <= model.parallel_read_energy());
        prop_assert!(model.tag_and_decode_energy() < model.single_way_read_energy());
    }

    /// Trace generation is deterministic in the seed and honours the
    /// requested length.
    #[test]
    fn traces_are_deterministic(seed in any::<u64>(), ops in 1usize..2_000) {
        let config = TraceConfig::new(Benchmark::Perl).with_ops(ops).with_seed(seed);
        let a: Vec<_> = TraceGenerator::new(config).collect();
        let b: Vec<_> = TraceGenerator::new(config).collect();
        prop_assert_eq!(a.len(), ops);
        prop_assert_eq!(a, b);
    }

    /// Controller accounting identity: every load lands in exactly one
    /// breakdown class, latency is at least the base latency, and energy is
    /// positive.
    #[test]
    fn dcache_controller_accounting_holds(
        addrs in prop::collection::vec((0u64..64, 0u64..0x4000), 1..200),
        policy_idx in 0usize..7,
    ) {
        let policy = DCachePolicy::all()[policy_idx];
        let mut controller = DCacheController::new(L1Config::paper_dcache(), policy)
            .expect("valid config");
        for (pc, addr) in &addrs {
            let out = controller.load(0x400 + pc * 4, *addr, *addr);
            prop_assert!(out.latency >= 1);
            prop_assert!(out.energy > 0.0);
            prop_assert!(out.ways_probed <= controller.config().associativity);
        }
        let stats = controller.stats();
        let classified = stats.direct_mapped_accesses
            + stats.parallel_accesses
            + stats.way_predicted_accesses
            + stats.sequential_accesses
            + stats.mispredicted_accesses;
        prop_assert_eq!(classified, stats.loads);
        prop_assert_eq!(stats.loads, addrs.len() as u64);
    }
}
