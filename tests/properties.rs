//! Property-based tests (proptest) over the core data structures and
//! invariants: cache residency/consistency, LRU behaviour, predictor
//! bounds, energy-model monotonicity, trace determinism, and controller
//! accounting identities.

use proptest::prelude::*;
use wpsdm::cache::{DCacheController, DCachePolicy, L1Config};
use wpsdm::energy::CacheEnergyModel;
use wpsdm::mem::{AccessKind, CacheGeometry, Placement, SetAssocCache};
use wpsdm::predictors::{MappingPrediction, SaturatingCounter, SelDmPredictor, VictimList};
use wpsdm::workloads::{Benchmark, TraceConfig, TraceGenerator};

/// The pre-flattening tag store: the nested-`Vec<Vec<Way>>` implementation
/// the structure-of-arrays [`SetAssocCache`] replaced, kept verbatim as a
/// behavioural reference. The property tests below drive both over
/// arbitrary address streams and demand the same hit/way/eviction sequence
/// access for access.
mod reference {
    use wpsdm::mem::{AccessKind, AccessResult, CacheGeometry, CacheLine, Placement, WayIndex};

    #[derive(Debug, Clone, Copy)]
    struct Way {
        valid: bool,
        tag: u64,
        block_addr: u64,
        dirty: bool,
        direct_mapped: bool,
        lru_stamp: u64,
    }

    impl Way {
        fn empty() -> Self {
            Self {
                valid: false,
                tag: 0,
                block_addr: 0,
                dirty: false,
                direct_mapped: false,
                lru_stamp: 0,
            }
        }
    }

    pub struct NestedVecCache {
        geometry: CacheGeometry,
        sets: Vec<Vec<Way>>,
        clock: u64,
    }

    impl NestedVecCache {
        pub fn new(geometry: CacheGeometry) -> Self {
            let sets = vec![vec![Way::empty(); geometry.associativity()]; geometry.num_sets()];
            Self {
                geometry,
                sets,
                clock: 0,
            }
        }

        pub fn probe(&self, addr: u64) -> Option<WayIndex> {
            let set = self.geometry.set_index(addr);
            let tag = self.geometry.tag(addr);
            self.sets[set].iter().position(|w| w.valid && w.tag == tag)
        }

        pub fn resident_blocks(&self) -> usize {
            self.sets
                .iter()
                .map(|s| s.iter().filter(|w| w.valid).count())
                .sum()
        }

        pub fn access(
            &mut self,
            addr: u64,
            kind: AccessKind,
            placement: Placement,
        ) -> AccessResult {
            self.clock += 1;
            let set = self.geometry.set_index(addr);
            let tag = self.geometry.tag(addr);
            let dm_way = self.geometry.direct_mapped_way(addr);
            if let Some(way) = self.sets[set].iter().position(|w| w.valid && w.tag == tag) {
                let entry = &mut self.sets[set][way];
                entry.lru_stamp = self.clock;
                if kind == AccessKind::Write {
                    entry.dirty = true;
                }
                return AccessResult {
                    hit: true,
                    way,
                    in_direct_mapped_way: way == dm_way,
                    evicted: None,
                };
            }
            let (way, evicted) = self.fill_at(set, tag, addr, dm_way, placement);
            if kind == AccessKind::Write {
                self.sets[set][way].dirty = true;
            }
            AccessResult {
                hit: false,
                way,
                in_direct_mapped_way: way == dm_way,
                evicted,
            }
        }

        pub fn fill(&mut self, addr: u64, placement: Placement) -> (WayIndex, Option<CacheLine>) {
            self.clock += 1;
            let set = self.geometry.set_index(addr);
            let tag = self.geometry.tag(addr);
            let dm_way = self.geometry.direct_mapped_way(addr);
            if let Some(way) = self.sets[set].iter().position(|w| w.valid && w.tag == tag) {
                self.sets[set][way].lru_stamp = self.clock;
                return (way, None);
            }
            self.fill_at(set, tag, addr, dm_way, placement)
        }

        pub fn invalidate(&mut self, addr: u64) -> Option<CacheLine> {
            let set = self.geometry.set_index(addr);
            let tag = self.geometry.tag(addr);
            let way = self.sets[set]
                .iter()
                .position(|w| w.valid && w.tag == tag)?;
            let w = &self.sets[set][way];
            let line = CacheLine {
                block_addr: w.block_addr,
                dirty: w.dirty,
                direct_mapped: w.direct_mapped,
            };
            self.sets[set][way] = Way::empty();
            Some(line)
        }

        fn fill_at(
            &mut self,
            set: usize,
            tag: u64,
            addr: u64,
            dm_way: WayIndex,
            placement: Placement,
        ) -> (WayIndex, Option<CacheLine>) {
            let victim_way = match placement {
                Placement::DirectMapped => dm_way,
                Placement::SetAssociative => self.choose_victim(set),
            };
            let victim = &self.sets[set][victim_way];
            let evicted = victim.valid.then_some(CacheLine {
                block_addr: victim.block_addr,
                dirty: victim.dirty,
                direct_mapped: victim.direct_mapped,
            });
            self.sets[set][victim_way] = Way {
                valid: true,
                tag,
                block_addr: self.geometry.block_addr(addr),
                dirty: false,
                direct_mapped: victim_way == dm_way,
                lru_stamp: self.clock,
            };
            (victim_way, evicted)
        }

        fn choose_victim(&self, set: usize) -> WayIndex {
            if let Some(way) = self.sets[set].iter().position(|w| !w.valid) {
                return way;
            }
            self.sets[set]
                .iter()
                .enumerate()
                .min_by_key(|(_, w)| w.lru_stamp)
                .map(|(i, _)| i)
                .unwrap_or(0)
        }
    }
}

/// A strategy over valid L1-style geometries.
fn geometry_strategy() -> impl Strategy<Value = CacheGeometry> {
    (0usize..=3, 0usize..=2, 0usize..=3).prop_map(|(size, block, assoc)| {
        let size_bytes = (4 * 1024) << size; // 4K..32K
        let block_bytes = 16 << block; // 16..64
        let associativity = 1 << assoc; // 1..8
        CacheGeometry::new(size_bytes, block_bytes, associativity).expect("valid geometry")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// After any access the block is resident, and a probe finds it in the
    /// way the access reported.
    #[test]
    fn accessed_blocks_are_resident(
        geometry in geometry_strategy(),
        addrs in prop::collection::vec(0u64..0x10_0000, 1..200),
    ) {
        let mut cache = SetAssocCache::new(geometry);
        for addr in addrs {
            let result = cache.access(addr, AccessKind::Read, Placement::SetAssociative);
            prop_assert_eq!(cache.probe(addr), Some(result.way));
        }
    }

    /// The number of resident blocks never exceeds the capacity, whatever
    /// mix of placements is used.
    #[test]
    fn residency_never_exceeds_capacity(
        geometry in geometry_strategy(),
        ops in prop::collection::vec((0u64..0x4_0000, any::<bool>(), any::<bool>()), 1..300),
    ) {
        let mut cache = SetAssocCache::new(geometry);
        for (addr, write, direct) in ops {
            let kind = if write { AccessKind::Write } else { AccessKind::Read };
            let placement = if direct { Placement::DirectMapped } else { Placement::SetAssociative };
            cache.access(addr, kind, placement);
            prop_assert!(cache.resident_blocks() <= geometry.num_blocks());
        }
    }

    /// Hits plus misses always equals accesses, and the miss ratio stays in
    /// [0, 1].
    #[test]
    fn cache_stats_are_consistent(
        addrs in prop::collection::vec(0u64..0x8000, 1..300),
    ) {
        let geometry = CacheGeometry::new(4 * 1024, 32, 2).expect("valid geometry");
        let mut cache = SetAssocCache::new(geometry);
        for addr in &addrs {
            cache.access(*addr, AccessKind::Read, Placement::SetAssociative);
        }
        let stats = cache.stats();
        prop_assert_eq!(stats.accesses(), addrs.len() as u64);
        prop_assert!(stats.miss_ratio() >= 0.0 && stats.miss_ratio() <= 1.0);
        prop_assert!(stats.misses() <= stats.accesses());
    }

    /// The direct-mapping way is always a legal way index and depends only
    /// on the address bits above the set index.
    #[test]
    fn direct_mapped_way_is_legal(geometry in geometry_strategy(), addr in any::<u64>()) {
        let way = geometry.direct_mapped_way(addr);
        prop_assert!(way < geometry.associativity());
        let offset = (addr % geometry.block_bytes() as u64) as u64;
        prop_assert_eq!(way, geometry.direct_mapped_way(addr - offset));
    }

    /// Saturating counters never leave their range and is_high is consistent
    /// with the value.
    #[test]
    fn saturating_counter_stays_in_range(start in 0u8..=3, steps in prop::collection::vec(any::<bool>(), 0..64)) {
        let mut counter = SaturatingCounter::two_bit(start);
        for up in steps {
            if up { counter.increment() } else { counter.decrement() }
            prop_assert!(counter.value() <= 3);
            prop_assert_eq!(counter.is_high(), counter.value() >= 2);
        }
    }

    /// The selective-DM predictor flips to set-associative only after more
    /// set-associative hits than direct-mapped hits (within saturation).
    #[test]
    fn seldm_prediction_tracks_hit_history(events in prop::collection::vec(any::<bool>(), 0..32)) {
        let mut predictor = SelDmPredictor::new(64);
        let pc = 0x440;
        for sa_hit in &events {
            if *sa_hit {
                predictor.record_set_associative_hit(pc);
            } else {
                predictor.record_direct_mapped_hit(pc);
            }
        }
        let value = predictor.counter_value(pc);
        prop_assert!(value <= 3);
        let prediction = predictor.predict(pc);
        prop_assert_eq!(prediction == MappingPrediction::SetAssociative, value >= 2);
    }

    /// The victim list flags a block as conflicting if and only if it has
    /// been evicted more than the threshold number of times while tracked.
    #[test]
    fn victim_list_threshold_is_respected(evictions in 0u32..8, threshold in 0u32..4) {
        let mut list = VictimList::new(16, threshold);
        let block = 0xabc0;
        let mut flagged = false;
        for _ in 0..evictions {
            flagged = list.record_eviction(block);
        }
        prop_assert_eq!(list.is_conflicting(block), evictions > threshold);
        if evictions > 0 {
            prop_assert_eq!(flagged, evictions > threshold);
        }
    }

    /// Cache energy is monotonic in the number of ways probed, and a
    /// parallel read of an N-way cache costs more than any partial probe.
    #[test]
    fn energy_monotonic_in_ways_probed(geometry in geometry_strategy(), ways in 1usize..8) {
        let model = CacheEnergyModel::new(geometry);
        let ways = ways.min(geometry.associativity());
        if ways >= 1 {
            prop_assert!(model.n_way_read_energy(ways) <= model.n_way_read_energy(ways + 1));
        }
        prop_assert!(model.single_way_read_energy() <= model.parallel_read_energy());
        prop_assert!(model.tag_and_decode_energy() < model.single_way_read_energy());
    }

    /// Trace generation is deterministic in the seed and honours the
    /// requested length.
    #[test]
    fn traces_are_deterministic(seed in any::<u64>(), ops in 1usize..2_000) {
        let config = TraceConfig::new(Benchmark::Perl).with_ops(ops).with_seed(seed);
        let a: Vec<_> = TraceGenerator::new(config).collect();
        let b: Vec<_> = TraceGenerator::new(config).collect();
        prop_assert_eq!(a.len(), ops);
        prop_assert_eq!(a, b);
    }

    /// The SWAR tag-match primitive produces the identical way mask to the
    /// retained scalar reference over arbitrary lanes — duplicate tags,
    /// absent tags, extreme values, every lane length up to a full mask.
    #[test]
    fn swar_tag_match_equals_scalar_reference(
        raw in prop::collection::vec((any::<u64>(), any::<bool>()), 0..64),
        probe_raw in any::<u64>(),
        probe_small in any::<bool>(),
    ) {
        // A mix of arbitrary lanes and a dense small-value band (high
        // duplicate / match probability), plus extreme values.
        let mut lane: Vec<u64> = raw
            .iter()
            .map(|&(v, small)| if small { v % 8 } else { v })
            .collect();
        if let Some(first) = lane.first_mut() {
            *first = u64::MAX;
        }
        let probe = if probe_small { probe_raw % 8 } else { probe_raw };
        prop_assert_eq!(
            wpsdm::mem::swar::tag_match_mask(&lane, probe),
            wpsdm::mem::swar::tag_match_mask_scalar(&lane, probe)
        );
        // The valid-mask-folding hit scan agrees with the retained
        // early-exit scalar scan under every low-bit valid pattern.
        let full = if lane.is_empty() { 0 } else { u64::MAX >> (64 - lane.len()) };
        for valid in [0u64, full, probe_raw & full, !probe_raw & full] {
            prop_assert_eq!(
                wpsdm::mem::swar::first_hit(&lane, probe, valid),
                wpsdm::mem::swar::first_hit_scalar(&lane, probe, valid)
            );
        }
        // Probing a value present in the lane always sets that lane's bit.
        for (way, &tag) in lane.iter().enumerate() {
            prop_assert_ne!(wpsdm::mem::swar::tag_match_mask(&lane, tag) & (1u64 << way), 0);
        }
    }

    /// The flat structure-of-arrays tag store is access-for-access
    /// equivalent to the nested-Vec implementation it replaced: the same
    /// hit/way/eviction sequence over arbitrary interleavings of reads,
    /// writes, fills, and invalidates, under both placement modes. Since
    /// the fused scan now runs on the SWAR primitive, this also proves the
    /// SWAR set-scan's hit way, victim choice, and valid/dirty interactions
    /// across random geometries against the pre-SWAR scalar behaviour.
    #[test]
    fn soa_cache_matches_nested_vec_reference(
        geometry in geometry_strategy(),
        ops in prop::collection::vec((0u64..0x8_0000, 0u8..4, any::<bool>()), 1..300),
    ) {
        let mut flat = SetAssocCache::new(geometry);
        let mut reference = reference::NestedVecCache::new(geometry);
        for (addr, action, direct) in ops {
            let placement = if direct {
                Placement::DirectMapped
            } else {
                Placement::SetAssociative
            };
            match action {
                0 => {
                    let a = flat.access(addr, AccessKind::Read, placement);
                    let b = reference.access(addr, AccessKind::Read, placement);
                    prop_assert_eq!(a, b);
                }
                1 => {
                    let a = flat.access(addr, AccessKind::Write, placement);
                    let b = reference.access(addr, AccessKind::Write, placement);
                    prop_assert_eq!(a, b);
                }
                2 => {
                    prop_assert_eq!(flat.fill(addr, placement), reference.fill(addr, placement));
                }
                _ => {
                    prop_assert_eq!(flat.invalidate(addr), reference.invalidate(addr));
                }
            }
            prop_assert_eq!(flat.probe(addr), reference.probe(addr));
            prop_assert_eq!(flat.resident_blocks(), reference.resident_blocks());
        }
    }

    /// Dense conflict streams (every address in one set) keep the two
    /// implementations in lock-step through sustained LRU evictions.
    #[test]
    fn soa_cache_matches_reference_under_conflict_pressure(
        assoc in 0usize..=3,
        tags in prop::collection::vec(0u64..12, 1..200),
        writes in prop::collection::vec(any::<bool>(), 1..200),
    ) {
        let geometry =
            CacheGeometry::new(4 * 1024, 32, 1 << assoc).expect("valid geometry");
        let set_stride = (geometry.num_sets() * geometry.block_bytes()) as u64;
        let mut flat = SetAssocCache::new(geometry);
        let mut reference = reference::NestedVecCache::new(geometry);
        for (tag, write) in tags.iter().zip(writes.iter().cycle()) {
            let addr = tag * set_stride;
            let kind = if *write { AccessKind::Write } else { AccessKind::Read };
            let a = flat.access(addr, kind, Placement::SetAssociative);
            let b = reference.access(addr, kind, Placement::SetAssociative);
            prop_assert_eq!(a, b);
        }
        prop_assert_eq!(flat.resident_blocks(), reference.resident_blocks());
    }

    /// Controller accounting identity: every load lands in exactly one
    /// breakdown class, latency is at least the base latency, and energy is
    /// positive.
    #[test]
    fn dcache_controller_accounting_holds(
        addrs in prop::collection::vec((0u64..64, 0u64..0x4000), 1..200),
        policy_idx in 0usize..7,
    ) {
        let policy = DCachePolicy::all()[policy_idx];
        let mut controller = DCacheController::new(L1Config::paper_dcache(), policy)
            .expect("valid config");
        for (pc, addr) in &addrs {
            let out = controller.load(0x400 + pc * 4, *addr, *addr);
            prop_assert!(out.latency >= 1);
            prop_assert!(out.energy > 0.0);
            prop_assert!(out.ways_probed <= controller.config().associativity);
        }
        let stats = controller.stats();
        let classified = stats.direct_mapped_accesses
            + stats.parallel_accesses
            + stats.way_predicted_accesses
            + stats.sequential_accesses
            + stats.mispredicted_accesses;
        prop_assert_eq!(classified, stats.loads);
        prop_assert_eq!(stats.loads, addrs.len() as u64);
    }
}
