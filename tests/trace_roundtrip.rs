//! Integration tests for the trace capture/replay subsystem: a captured
//! trace must replay the *bit-identical* reference stream, and a simulation
//! driven by the replay must produce exactly the statistics of a simulation
//! driven by the live generator — over benchmarks and scenarios, through
//! both the direct runner and the deduplicating engine.

use std::io::Cursor;
use std::path::PathBuf;

use proptest::prelude::*;
use wpsdm::experiments::engine::{SimEngine, SimPlan, SimPoint};
use wpsdm::experiments::runner::simulate_workload;
use wpsdm::experiments::{MachineConfig, RunOptions};
use wpsdm::workloads::{
    capture_to_file, Benchmark, Scenario, TextTraceReader, TextTraceWriter, TraceHandle,
    TraceReader, TraceWriter, WorkloadSpec,
};

/// A fresh path under the test-scoped temp dir.
fn temp_path(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

/// The capture→replay sources the acceptance criterion sweeps: two paper
/// benchmarks (one of them swim's pathological profile) and the three new
/// scenarios.
fn workloads_under_test() -> Vec<WorkloadSpec> {
    vec![
        WorkloadSpec::Benchmark(Benchmark::Gcc),
        WorkloadSpec::Benchmark(Benchmark::Swim),
        WorkloadSpec::Scenario(Scenario::pointer_chase()),
        WorkloadSpec::Scenario(Scenario::strided_stream()),
        WorkloadSpec::Scenario(Scenario::phase_mix()),
    ]
}

#[test]
fn captured_traces_replay_bit_identical_streams() {
    let options = RunOptions::quick().with_ops(8_000);
    for (index, workload) in workloads_under_test().into_iter().enumerate() {
        let live: Vec<_> = workload
            .stream(options.ops, options.seed)
            .expect("generated workload")
            .collect();
        let path = temp_path(&format!("stream_{index}.wpt"));
        capture_to_file(live.iter().copied(), &path, &workload.label()).expect("capture");

        let handle = TraceHandle::open(&path).expect("open");
        assert_eq!(handle.records(), live.len() as u64);
        assert_eq!(handle.source(), workload.label());
        let replayed: Vec<_> = handle.replay().expect("replay").collect();
        assert_eq!(replayed, live, "{workload}: replay must be bit-identical");
    }
}

#[test]
fn replayed_simulations_reproduce_live_statistics_exactly() {
    // The acceptance criterion: trace_capture of any built-in workload
    // followed by trace_replay reproduces the exact same simulation
    // statistics as running the generator live.
    let options = RunOptions::quick().with_ops(8_000);
    let machine = MachineConfig::baseline();
    for (index, workload) in workloads_under_test().into_iter().enumerate() {
        let path = temp_path(&format!("sim_{index}.wpt"));
        let stream = workload
            .stream(options.ops, options.seed)
            .expect("generated workload");
        capture_to_file(stream, &path, &workload.label()).expect("capture");

        let live = simulate_workload(&workload, &machine, &options);
        let trace_workload = WorkloadSpec::from_trace_file(&path).expect("open");
        let replayed = simulate_workload(&trace_workload, &machine, &options);
        assert_eq!(
            live, replayed,
            "{workload}: replayed simulation must match the live generator exactly"
        );
    }
}

#[test]
fn trace_points_dedup_by_content_identity_in_the_engine() {
    let options = RunOptions::quick().with_ops(6_000);
    let machine = MachineConfig::baseline();
    let workload = WorkloadSpec::Scenario(Scenario::strided_stream());

    let original = temp_path("dedup_original.wpt");
    let stream = workload
        .stream(options.ops, options.seed)
        .expect("generated workload");
    capture_to_file(stream, &original, "dedup test").expect("capture");
    // The same capture at a different path is the same workload identity.
    let copy = temp_path("dedup_copy.wpt");
    std::fs::copy(&original, &copy).expect("copy");

    let via_original = WorkloadSpec::from_trace_file(&original).expect("open original");
    let via_copy = WorkloadSpec::from_trace_file(&copy).expect("open copy");
    assert_eq!(via_original, via_copy, "identity is content, not path");

    let mut plan = SimPlan::new();
    plan.add(SimPoint::with_workload(
        via_original.clone(),
        machine,
        options,
    ));
    plan.add(SimPoint::with_workload(via_copy, machine, options));
    plan.add(SimPoint::with_workload(workload.clone(), machine, options));
    assert_eq!(
        plan.unique_points().len(),
        2,
        "two paths to one capture must dedup; the live generator stays distinct"
    );

    let matrix = SimEngine::new(2).run(&plan);
    assert_eq!(matrix.executed_points(), 2);
    // And the trace-backed matrix entry equals the live-generator entry.
    let from_trace = matrix.require_workload(&via_original, &machine, &options);
    let from_live = matrix.require_workload(&workload, &machine, &options);
    assert_eq!(from_trace, from_live);
}

#[test]
fn text_twin_converts_losslessly_both_ways() {
    let workload = WorkloadSpec::Benchmark(Benchmark::Li);
    let live: Vec<_> = workload.stream(4_000, 11).expect("generated").collect();

    // binary -> ops -> text -> ops
    let mut binary = TraceWriter::new(Cursor::new(Vec::new()), "twin").expect("header");
    let mut text = TextTraceWriter::new(Vec::new(), "twin").expect("header");
    for op in &live {
        binary.write_op(op).expect("binary record");
        text.write_op(op).expect("text record");
    }
    let binary = binary.finish().expect("finish").into_inner();
    let text = text.finish().expect("finish");

    let from_binary: Vec<_> = TraceReader::new(Cursor::new(binary))
        .expect("header")
        .collect::<Result<_, _>>()
        .expect("decode");
    let from_text: Vec<_> = TextTraceReader::new(Cursor::new(text))
        .expect("header")
        .collect::<Result<_, _>>()
        .expect("parse");
    assert_eq!(from_binary, live);
    assert_eq!(from_text, live);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any (workload, ops, seed) round-trips bit-identically through the
    /// in-memory binary codec and its text twin.
    #[test]
    fn any_stream_round_trips_bit_identically(
        workload_index in 0usize..5,
        ops in 1usize..3_000,
        seed in 0u64..1_000,
    ) {
        let workload = workloads_under_test()[workload_index].clone();
        let live: Vec<_> = workload.stream(ops, seed).expect("generated").collect();
        prop_assert_eq!(live.len(), ops);

        let mut writer = TraceWriter::new(Cursor::new(Vec::new()), "prop").expect("header");
        for op in &live {
            writer.write_op(op).expect("record");
        }
        let bytes = writer.finish().expect("finish").into_inner();
        let replayed: Vec<_> = TraceReader::new(Cursor::new(bytes))
            .expect("header")
            .collect::<Result<_, _>>()
            .expect("decode");
        prop_assert_eq!(&replayed, &live);

        let mut writer = TextTraceWriter::new(Vec::new(), "prop").expect("header");
        for op in &live {
            writer.write_op(op).expect("record");
        }
        let text = writer.finish().expect("finish");
        let parsed: Vec<_> = TextTraceReader::new(Cursor::new(text))
            .expect("header")
            .collect::<Result<_, _>>()
            .expect("parse");
        prop_assert_eq!(&parsed, &live);
    }

    /// A captured trace produces a SimMatrix entry identical to the live
    /// generator's, whatever the workload, length, or seed.
    #[test]
    fn any_capture_matches_the_live_matrix_entry(
        case in 0u64..1_000_000,
        workload_index in 0usize..5,
        ops in 500usize..2_500,
        seed in 0u64..1_000,
    ) {
        let workload = workloads_under_test()[workload_index].clone();
        let options = RunOptions::default().with_ops(ops).with_seed(seed);
        let machine = MachineConfig::baseline();

        let path = temp_path(&format!("prop_{case}_{workload_index}_{ops}_{seed}.wpt"));
        let stream = workload.stream(ops, seed).expect("generated");
        capture_to_file(stream, &path, "prop").expect("capture");
        let trace_workload = WorkloadSpec::from_trace_file(&path).expect("open");

        let mut plan = SimPlan::new();
        plan.add(SimPoint::with_workload(workload.clone(), machine, options));
        plan.add(SimPoint::with_workload(trace_workload.clone(), machine, options));
        let matrix = SimEngine::serial().run(&plan);
        prop_assert_eq!(matrix.executed_points(), 2);
        prop_assert_eq!(
            matrix.require_workload(&workload, &machine, &options),
            matrix.require_workload(&trace_workload, &machine, &options)
        );
        std::fs::remove_file(&path).ok();
    }
}
