//! Integration tests for gang-scheduled sweep execution: bit-identical
//! results with gangs on, off, and single-threaded; the
//! materialize-each-stream-exactly-once invariant over the full `run_all`
//! plan; and spill-path equivalence under a tiny stream memory cap.

use proptest::prelude::*;
use wpsdm::cache::{DCachePolicy, ICachePolicy};
use wpsdm::experiments::engine::{SimEngine, SimPlan};
use wpsdm::experiments::{run_all_plan, MachineConfig, RunOptions, SimPoint};
use wpsdm::workloads::{Benchmark, Scenario, WorkloadSpec};

fn tiny() -> RunOptions {
    RunOptions::quick().with_ops(2_000)
}

/// A mixed plan: several workload kinds, several machines per workload, a
/// couple of stream identities — the shape gang scheduling reorganizes.
fn mixed_plan(options: RunOptions) -> SimPlan {
    let baseline = MachineConfig::baseline();
    let mut plan = SimPlan::new();
    for workload in [
        WorkloadSpec::Benchmark(Benchmark::Gcc),
        WorkloadSpec::Benchmark(Benchmark::Swim),
        WorkloadSpec::Scenario(Scenario::pointer_chase()),
    ] {
        for dpolicy in [
            DCachePolicy::Parallel,
            DCachePolicy::Sequential,
            DCachePolicy::SelDmWayPredict,
        ] {
            plan.add(SimPoint::with_workload(
                workload.clone(),
                baseline.with_dpolicy(dpolicy),
                options,
            ));
        }
        plan.add(SimPoint::with_workload(
            workload.clone(),
            baseline.with_ipolicy(ICachePolicy::WayPredict),
            options,
        ));
    }
    // One point at a different stream length: its gang must not merge with
    // the same workload at the base length.
    plan.add(SimPoint::with_workload(
        WorkloadSpec::Benchmark(Benchmark::Gcc),
        baseline,
        options.with_ops(options.ops / 2),
    ));
    plan
}

/// Every result in `a` must be bit-identical in `b`.
fn assert_matrices_identical(
    plan: &SimPlan,
    a: &wpsdm::experiments::SimMatrix,
    b: &wpsdm::experiments::SimMatrix,
    what: &str,
) {
    assert_eq!(a.len(), b.len());
    for point in plan.unique_points() {
        let ra = a.require_workload(&point.workload, &point.machine, &point.options);
        let rb = b.require_workload(&point.workload, &point.machine, &point.options);
        assert_eq!(ra, rb, "{what}: results diverged at {}", point.workload);
    }
}

#[test]
fn gang_results_are_bit_identical_to_point_at_a_time() {
    let plan = mixed_plan(tiny());
    let gang = SimEngine::new(2).run(&plan);
    let point_at_a_time = SimEngine::new(2).without_gang().run(&plan);
    let serial_gang = SimEngine::serial().run(&plan);
    assert_matrices_identical(&plan, &gang, &point_at_a_time, "gang vs no-gang");
    assert_matrices_identical(&plan, &gang, &serial_gang, "threads vs serial");
    // The no-gang engine materializes nothing; the gang engine groups the
    // four stream identities (three workloads at the base length, one at
    // the halved length).
    assert_eq!(point_at_a_time.streams_materialized(), 0);
    assert_eq!(point_at_a_time.gangs(), 0);
    assert_eq!(gang.streams_materialized(), 4);
    assert_eq!(gang.gangs(), 4);
}

#[test]
fn cold_run_all_materializes_each_unique_stream_exactly_once() {
    // The acceptance invariant: a cold full-plan sweep (no matrix cache)
    // produces each unique workload stream exactly once — the
    // stream-production counter equals the number of distinct
    // (workload, ops, seed) identities, never the point count.
    let options = tiny();
    let plan = run_all_plan(&options);
    let unique_streams: std::collections::HashSet<_> = plan
        .unique_points()
        .iter()
        .map(|p| (p.workload.clone(), p.options.ops, p.options.seed))
        .collect();

    let matrix = SimEngine::new(2).run(&plan);
    assert_eq!(matrix.executed_points(), plan.unique_points().len());
    assert_eq!(matrix.streams_materialized(), unique_streams.len());
    assert_eq!(matrix.gangs(), unique_streams.len());
    // run_all sweeps many configurations per workload, so the dedup factor
    // is large: far more ops consumed than generated.
    assert!(matrix.ops_generated() > 0);
    assert!(
        matrix.ops_consumed() >= 10 * matrix.ops_generated(),
        "expected a large gang dedup factor, got {} generated / {} consumed",
        matrix.ops_generated(),
        matrix.ops_consumed()
    );

    // Re-running the same plan executes nothing and materializes nothing.
    let mut matrix = matrix;
    SimEngine::new(2).run_into(&mut matrix, &plan);
    assert_eq!(matrix.streams_materialized(), unique_streams.len());
}

#[test]
fn spilled_streams_produce_identical_results() {
    // A 1-byte stream memory cap forces every gang stream through the WPTR
    // spill path; results must not change.
    let plan = mixed_plan(tiny());
    let in_memory = SimEngine::new(2).run(&plan);
    let spilled = SimEngine::new(2).with_stream_memory_cap(1).run(&plan);
    assert_matrices_identical(&plan, &in_memory, &spilled, "in-memory vs spilled");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Gang-scheduled and point-at-a-time execution agree bit-for-bit over
    /// arbitrary small plans: random workloads, policies, lengths, seeds.
    #[test]
    fn gang_matches_point_at_a_time_over_arbitrary_plans(
        selections in prop::collection::vec(
            (0usize..4, 0usize..7, 1usize..3, 0u64..2),
            1..10,
        ),
    ) {
        let workloads = [
            WorkloadSpec::Benchmark(Benchmark::Gcc),
            WorkloadSpec::Benchmark(Benchmark::Li),
            WorkloadSpec::Scenario(Scenario::strided_stream()),
            WorkloadSpec::Scenario(Scenario::phase_mix()),
        ];
        let mut plan = SimPlan::new();
        for (w, p, ops_k, seed) in selections {
            plan.add(SimPoint::with_workload(
                workloads[w].clone(),
                MachineConfig::baseline().with_dpolicy(DCachePolicy::all()[p]),
                RunOptions::quick().with_ops(ops_k * 1_000).with_seed(seed),
            ));
        }
        let gang = SimEngine::new(2).run(&plan);
        let plain = SimEngine::new(2).without_gang().run(&plan);
        for point in plan.unique_points() {
            let a = gang.require_workload(&point.workload, &point.machine, &point.options);
            let b = plain.require_workload(&point.workload, &point.machine, &point.options);
            prop_assert_eq!(a, b);
        }
    }
}
