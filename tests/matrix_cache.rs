//! Integration tests for the persistent on-disk matrix cache: the full
//! run_all plan produces bit-identical results whether points are
//! simulated fresh (no cache), simulated into a cold cache, or served from
//! a warm cache — and a warm `run_all` executes zero simulations.

use std::path::PathBuf;

use wpsdm::experiments::engine::SimEngine;
use wpsdm::experiments::matrix_cache::MatrixCache;
use wpsdm::experiments::{
    fig10, fig11, fig4, fig5, fig6, fig7, fig8, fig9, report, run_all_plan, table3, table4, table5,
    RunOptions, SimMatrix,
};

/// A trace length small enough to sweep the full run_all plan three times.
fn tiny() -> RunOptions {
    RunOptions::quick().with_ops(2_000)
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("wpsdm-matrix-itest-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Renders every one of the 11 figure/table artefacts from a matrix as one
/// JSON document — the repo's definition of "the outputs".
fn render_all(matrix: &SimMatrix, options: &RunOptions) -> Vec<String> {
    vec![
        report::to_json(&table3::from_matrix(matrix, options)),
        report::to_json(&table4::from_matrix(matrix, options)),
        report::to_json(&fig4::from_matrix(matrix, options)),
        report::to_json(&fig5::from_matrix(matrix, options)),
        report::to_json(&fig6::from_matrix(matrix, options)),
        report::to_json(&table5::from_matrix(matrix, options)),
        report::to_json(&fig7::from_matrix(matrix, options)),
        report::to_json(&fig8::from_matrix(matrix, options)),
        report::to_json(&fig9::from_matrix(matrix, options)),
        report::to_json(&fig10::from_matrix(matrix, options)),
        report::to_json(&fig11::from_matrix(matrix, options)),
    ]
}

#[test]
fn warm_cache_serves_all_eleven_artefacts_bit_identically() {
    let options = tiny();
    let plan = run_all_plan(&options);
    let unique = plan.unique_points().len();
    let dir = temp_dir("warm");

    // Reference: no cache involved at all.
    let uncached_engine = SimEngine::default();
    let uncached = uncached_engine.run(&plan);
    assert_eq!(uncached.executed_points(), unique);
    assert_eq!(uncached.cache_hits(), 0);

    // Cold: everything simulates, results are stored.
    let cached_engine = SimEngine::default().with_matrix_cache(MatrixCache::new(&dir));
    let cold = cached_engine.run(&plan);
    assert_eq!(cold.executed_points(), unique);
    assert_eq!(cold.cache_hits(), 0);

    // Warm: a second run_all-shaped sweep executes ZERO simulations.
    let warm = cached_engine.run(&plan);
    assert_eq!(
        warm.executed_points(),
        0,
        "a warm matrix cache must serve every point without simulating"
    );
    assert_eq!(warm.cache_hits(), unique);

    // Every point's result is bit-identical across all three matrices
    // (PartialEq on SimResult compares the f64 energy totals exactly).
    for point in plan.unique_points() {
        let fresh = uncached.require_workload(&point.workload, &point.machine, &point.options);
        let stored = cold.require_workload(&point.workload, &point.machine, &point.options);
        let served = warm.require_workload(&point.workload, &point.machine, &point.options);
        assert_eq!(fresh, stored, "{}: cold run diverged", point.workload);
        assert_eq!(fresh, served, "{}: warm run diverged", point.workload);
    }

    // And all 11 rendered figure/table outputs are identical.
    let from_fresh = render_all(&uncached, &options);
    let from_warm = render_all(&warm, &options);
    assert_eq!(from_fresh.len(), 11);
    for (index, (fresh, warm)) in from_fresh.iter().zip(from_warm.iter()).enumerate() {
        assert_eq!(fresh, warm, "artefact #{index} rendered differently");
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cache_survives_thread_count_changes() {
    let options = tiny();
    let mut plan = wpsdm::experiments::engine::SimPlan::new();
    plan.add_all_benchmarks(wpsdm::experiments::MachineConfig::baseline(), options);
    let dir = temp_dir("threads");

    let serial = SimEngine::serial().with_matrix_cache(MatrixCache::new(&dir));
    let cold = serial.run(&plan);
    assert_eq!(cold.cache_hits(), 0);

    // A differently-parallel engine over the same directory hits every
    // point: the digest depends only on the point, not the schedule.
    let parallel = SimEngine::new(8).with_matrix_cache(MatrixCache::new(&dir));
    let warm = parallel.run(&plan);
    assert_eq!(warm.executed_points(), 0);
    assert_eq!(warm.cache_hits(), plan.unique_points().len());
    for point in plan.unique_points() {
        assert_eq!(
            cold.require_workload(&point.workload, &point.machine, &point.options),
            warm.require_workload(&point.workload, &point.machine, &point.options),
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn changed_options_miss_the_cache() {
    let options = tiny();
    let dir = temp_dir("invalidate");
    let engine = SimEngine::default().with_matrix_cache(MatrixCache::new(&dir));

    let mut plan = wpsdm::experiments::engine::SimPlan::new();
    plan.add(wpsdm::experiments::SimPoint::new(
        wpsdm::workloads::Benchmark::Gcc,
        wpsdm::experiments::MachineConfig::baseline(),
        options,
    ));
    let first = engine.run(&plan);
    assert_eq!(first.executed_points(), 1);

    // A different seed is a different point: digest changes, cache misses.
    let mut reseeded = wpsdm::experiments::engine::SimPlan::new();
    reseeded.add(wpsdm::experiments::SimPoint::new(
        wpsdm::workloads::Benchmark::Gcc,
        wpsdm::experiments::MachineConfig::baseline(),
        options.with_seed(options.seed + 1),
    ));
    let second = engine.run(&reseeded);
    assert_eq!(second.executed_points(), 1);
    assert_eq!(second.cache_hits(), 0);

    let _ = std::fs::remove_dir_all(&dir);
}
