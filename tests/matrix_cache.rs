//! Integration tests for the persistent on-disk matrix cache: the full
//! run_all plan produces bit-identical results whether points are
//! simulated fresh (no cache), simulated into a cold cache, or served from
//! a warm cache — and a warm `run_all` executes zero simulations.
//!
//! The degraded-mode section holds the cache to the reliability contract
//! (`docs/RELIABILITY.md`): a read-only directory, ENOSPC mid-store, and
//! stale-tmp debris each leave every result bit-identical to an uncached
//! run and increment the matching health counter.

use std::path::PathBuf;
use std::sync::Arc;

use wpsdm::experiments::engine::SimEngine;
use wpsdm::experiments::matrix_cache::MatrixCache;
use wpsdm::experiments::storage::{FaultKind, FaultPlan, FaultyIo};
use wpsdm::experiments::{
    fig10, fig11, fig4, fig5, fig6, fig7, fig8, fig9, report, run_all_plan, table3, table4, table5,
    RunOptions, SimMatrix,
};

/// A trace length small enough to sweep the full run_all plan three times.
fn tiny() -> RunOptions {
    RunOptions::quick().with_ops(2_000)
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("wpsdm-matrix-itest-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Renders every one of the 11 figure/table artefacts from a matrix as one
/// JSON document — the repo's definition of "the outputs".
fn render_all(matrix: &SimMatrix, options: &RunOptions) -> Vec<String> {
    vec![
        report::to_json(&table3::from_matrix(matrix, options)),
        report::to_json(&table4::from_matrix(matrix, options)),
        report::to_json(&fig4::from_matrix(matrix, options)),
        report::to_json(&fig5::from_matrix(matrix, options)),
        report::to_json(&fig6::from_matrix(matrix, options)),
        report::to_json(&table5::from_matrix(matrix, options)),
        report::to_json(&fig7::from_matrix(matrix, options)),
        report::to_json(&fig8::from_matrix(matrix, options)),
        report::to_json(&fig9::from_matrix(matrix, options)),
        report::to_json(&fig10::from_matrix(matrix, options)),
        report::to_json(&fig11::from_matrix(matrix, options)),
    ]
}

#[test]
fn warm_cache_serves_all_eleven_artefacts_bit_identically() {
    let options = tiny();
    let plan = run_all_plan(&options);
    let unique = plan.unique_points().len();
    let dir = temp_dir("warm");

    // Reference: no cache involved at all.
    let uncached_engine = SimEngine::default();
    let uncached = uncached_engine.run(&plan);
    assert_eq!(uncached.executed_points(), unique);
    assert_eq!(uncached.cache_hits(), 0);

    // Cold: everything simulates, results are stored.
    let cached_engine = SimEngine::default().with_matrix_cache(MatrixCache::new(&dir));
    let cold = cached_engine.run(&plan);
    assert_eq!(cold.executed_points(), unique);
    assert_eq!(cold.cache_hits(), 0);

    // Warm: a second run_all-shaped sweep executes ZERO simulations.
    let warm = cached_engine.run(&plan);
    assert_eq!(
        warm.executed_points(),
        0,
        "a warm matrix cache must serve every point without simulating"
    );
    assert_eq!(warm.cache_hits(), unique);

    // Every point's result is bit-identical across all three matrices
    // (PartialEq on SimResult compares the f64 energy totals exactly).
    for point in plan.unique_points() {
        let fresh = uncached.require_workload(&point.workload, &point.machine, &point.options);
        let stored = cold.require_workload(&point.workload, &point.machine, &point.options);
        let served = warm.require_workload(&point.workload, &point.machine, &point.options);
        assert_eq!(fresh, stored, "{}: cold run diverged", point.workload);
        assert_eq!(fresh, served, "{}: warm run diverged", point.workload);
    }

    // And all 11 rendered figure/table outputs are identical.
    let from_fresh = render_all(&uncached, &options);
    let from_warm = render_all(&warm, &options);
    assert_eq!(from_fresh.len(), 11);
    for (index, (fresh, warm)) in from_fresh.iter().zip(from_warm.iter()).enumerate() {
        assert_eq!(fresh, warm, "artefact #{index} rendered differently");
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cache_survives_thread_count_changes() {
    let options = tiny();
    let mut plan = wpsdm::experiments::engine::SimPlan::new();
    plan.add_all_benchmarks(wpsdm::experiments::MachineConfig::baseline(), options);
    let dir = temp_dir("threads");

    let serial = SimEngine::serial().with_matrix_cache(MatrixCache::new(&dir));
    let cold = serial.run(&plan);
    assert_eq!(cold.cache_hits(), 0);

    // A differently-parallel engine over the same directory hits every
    // point: the digest depends only on the point, not the schedule.
    let parallel = SimEngine::new(8).with_matrix_cache(MatrixCache::new(&dir));
    let warm = parallel.run(&plan);
    assert_eq!(warm.executed_points(), 0);
    assert_eq!(warm.cache_hits(), plan.unique_points().len());
    for point in plan.unique_points() {
        assert_eq!(
            cold.require_workload(&point.workload, &point.machine, &point.options),
            warm.require_workload(&point.workload, &point.machine, &point.options),
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
}

/// The benchmark-sweep plan the degraded-mode tests run: one point per
/// paper benchmark on the baseline machine.
fn benchmark_plan(options: RunOptions) -> wpsdm::experiments::engine::SimPlan {
    let mut plan = wpsdm::experiments::engine::SimPlan::new();
    plan.add_all_benchmarks(wpsdm::experiments::MachineConfig::baseline(), options);
    plan
}

#[test]
fn read_only_cache_dir_degrades_but_results_stay_correct() {
    let options = tiny();
    let plan = benchmark_plan(options);
    let unique = plan.unique_points().len();
    let reference = SimEngine::default().run(&plan);

    // Every mutating operation fails EACCES, as a read-only mount would.
    let dir = temp_dir("readonly");
    let cache =
        MatrixCache::with_io(&dir, Arc::new(FaultyIo::read_only())).with_breaker_threshold(4);
    let engine = SimEngine::default().with_matrix_cache(cache);
    let matrix = engine.run(&plan);

    // Results are bit-identical to the uncached run — the cache degraded,
    // the science did not.
    assert_eq!(matrix.executed_points(), unique);
    assert_eq!(matrix.cache_hits(), 0);
    for point in plan.unique_points() {
        assert_eq!(
            reference.require_workload(&point.workload, &point.machine, &point.options),
            matrix.require_workload(&point.workload, &point.machine, &point.options),
        );
    }
    // The right counters moved: every store failed, and with more failed
    // stores than the breaker threshold the cache degraded to pass-through.
    assert!(
        matrix.cache_io_errors() >= 4,
        "failed stores must count as I/O errors (saw {})",
        matrix.cache_io_errors()
    );
    assert!(
        matrix.cache_degraded(),
        "consecutive store failures past the threshold must trip the breaker"
    );
    // Nothing was ever written.
    assert!(
        !dir.exists()
            || std::fs::read_dir(&dir)
                .map(|mut d| d.next().is_none())
                .unwrap_or(true)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn enospc_mid_store_loses_one_record_but_no_results() {
    let options = tiny();
    let mut plan = wpsdm::experiments::engine::SimPlan::new();
    for benchmark in [
        wpsdm::workloads::Benchmark::Gcc,
        wpsdm::workloads::Benchmark::Li,
    ] {
        plan.add(wpsdm::experiments::SimPoint::new(
            benchmark,
            wpsdm::experiments::MachineConfig::baseline(),
            options,
        ));
    }
    let reference = SimEngine::serial().run(&plan);

    // Operation schedule for two missing points on a serial engine:
    // recovery list(0), load read(1), load read(2), then per store
    // mkdir/write/rename. Op 4 is the FIRST point's record write — fail it
    // ENOSPC with a torn 10-byte prefix.
    let dir = temp_dir("enospc");
    let plan_faults = FaultPlan::new().tear_write(4, 10, FaultKind::Enospc);
    let cache = MatrixCache::with_io(&dir, Arc::new(FaultyIo::with_plan(plan_faults)));
    let engine = SimEngine::serial().with_matrix_cache(cache);

    let cold = engine.run(&plan);
    assert_eq!(cold.executed_points(), 2);
    assert_eq!(
        cold.cache_io_errors(),
        1,
        "exactly the one ENOSPC write must be counted"
    );
    assert!(
        !cold.cache_degraded(),
        "one failure must not trip the breaker"
    );
    for point in plan.unique_points() {
        assert_eq!(
            reference.require_workload(&point.workload, &point.machine, &point.options),
            cold.require_workload(&point.workload, &point.machine, &point.options),
        );
    }

    // The failed store left no torn record behind (the tmp prefix was
    // cleaned up), so a warm run hits the surviving record and cleanly
    // re-simulates the lost one — with identical results.
    let warm = engine.run(&plan);
    assert_eq!(
        warm.cache_hits(),
        1,
        "the successfully stored record serves"
    );
    assert_eq!(warm.executed_points(), 1, "the lost record re-simulates");
    for point in plan.unique_points() {
        assert_eq!(
            reference.require_workload(&point.workload, &point.machine, &point.options),
            warm.require_workload(&point.workload, &point.machine, &point.options),
        );
    }
    let leftovers: Vec<String> = std::fs::read_dir(&dir)
        .map(|entries| {
            entries
                .map(|e| e.expect("entry").file_name().to_string_lossy().into_owned())
                .filter(|name| name.contains(".tmp"))
                .collect()
        })
        .unwrap_or_default();
    assert_eq!(
        leftovers,
        Vec::<String>::new(),
        "no torn tmp debris survives"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stale_tmp_debris_is_swept_and_counted() {
    let options = tiny();
    let plan = benchmark_plan(options);
    let reference = SimEngine::default().run(&plan);

    // Debris a crashed process would leave behind.
    let dir = temp_dir("staletmp");
    std::fs::create_dir_all(&dir).expect("mkdir");
    std::fs::write(
        dir.join("00000000deadbeef.wpsim.tmp4242.0"),
        b"half a record",
    )
    .expect("tmp");
    std::fs::write(dir.join("00000000cafef00d.wpsim.tmp4242.7"), b"").expect("tmp");

    let engine = SimEngine::default().with_matrix_cache(MatrixCache::new(&dir));
    let matrix = engine.run(&plan);
    assert_eq!(
        matrix.cache_recovered_tmp(),
        2,
        "both stranded tmp files swept"
    );
    assert_eq!(matrix.cache_io_errors(), 0);
    for point in plan.unique_points() {
        assert_eq!(
            reference.require_workload(&point.workload, &point.machine, &point.options),
            matrix.require_workload(&point.workload, &point.machine, &point.options),
        );
    }
    let stale: Vec<String> = std::fs::read_dir(&dir)
        .expect("cache dir")
        .map(|e| e.expect("entry").file_name().to_string_lossy().into_owned())
        .filter(|name| name.contains(".tmp"))
        .collect();
    assert_eq!(stale, Vec::<String>::new(), "recovery leaves no tmp files");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn changed_options_miss_the_cache() {
    let options = tiny();
    let dir = temp_dir("invalidate");
    let engine = SimEngine::default().with_matrix_cache(MatrixCache::new(&dir));

    let mut plan = wpsdm::experiments::engine::SimPlan::new();
    plan.add(wpsdm::experiments::SimPoint::new(
        wpsdm::workloads::Benchmark::Gcc,
        wpsdm::experiments::MachineConfig::baseline(),
        options,
    ));
    let first = engine.run(&plan);
    assert_eq!(first.executed_points(), 1);

    // A different seed is a different point: digest changes, cache misses.
    let mut reseeded = wpsdm::experiments::engine::SimPlan::new();
    reseeded.add(wpsdm::experiments::SimPoint::new(
        wpsdm::workloads::Benchmark::Gcc,
        wpsdm::experiments::MachineConfig::baseline(),
        options.with_seed(options.seed + 1),
    ));
    let second = engine.run(&reseeded);
    assert_eq!(second.executed_points(), 1);
    assert_eq!(second.cache_hits(), 0);

    let _ = std::fs::remove_dir_all(&dir);
}
