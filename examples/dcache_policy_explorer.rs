//! Policy explorer: sweep every d-cache design option the paper evaluates
//! over a chosen benchmark and print the Table 5-style comparison, so the
//! energy/performance trade-off of each option is visible side by side.
//!
//! Run with `cargo run --release --example dcache_policy_explorer [benchmark]`
//! where `benchmark` is one of the paper's eleven applications (default:
//! `vortex`).

use wpsdm::cache::DCachePolicy;
use wpsdm::experiments::runner::{simulate, MachineConfig, RunOptions};
use wpsdm::experiments::TextTable;
use wpsdm::workloads::Benchmark;

fn parse_benchmark(name: &str) -> Option<Benchmark> {
    Benchmark::all().into_iter().find(|b| b.name() == name)
}

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "vortex".to_string());
    let Some(benchmark) = parse_benchmark(&name) else {
        eprintln!(
            "unknown benchmark '{name}'; expected one of: {}",
            Benchmark::all().map(|b| b.name()).join(", ")
        );
        std::process::exit(1);
    };

    let options = RunOptions::default().with_ops(200_000);
    let baseline = simulate(benchmark, &MachineConfig::baseline(), &options);

    let mut table = TextTable::new(vec![
        "policy",
        "rel. energy-delay",
        "energy savings %",
        "perf. degradation %",
        "miss rate %",
        "waypred accuracy %",
    ]);
    for policy in DCachePolicy::all() {
        let machine = MachineConfig::baseline().with_dpolicy(policy);
        let run = simulate(benchmark, &machine, &options);
        let metrics = run.result.dcache_relative_to(&baseline.result);
        table.add_row(vec![
            policy.label().to_string(),
            format!("{:.2}", metrics.relative_energy_delay),
            format!("{:.1}", metrics.energy_savings() * 100.0),
            format!(
                "{:.1}",
                run.result.performance_degradation_vs(&baseline.result) * 100.0
            ),
            format!("{:.1}", run.result.dcache.miss_rate_percent()),
            format!("{:.0}", run.result.dcache.way_prediction_accuracy() * 100.0),
        ]);
    }
    println!("d-cache design options on {benchmark} (vs 1-cycle parallel access)\n");
    println!("{}", table.render());
}
