//! Quickstart: build the paper's recommended configuration — a 16 KB 4-way
//! L1 d-cache using selective direct-mapping plus way-prediction — run a
//! synthetic perl-like workload through the out-of-order processor model,
//! and print the energy-delay savings against the conventional
//! parallel-access baseline.
//!
//! Run with `cargo run --release --example quickstart`.

use wpsdm::cache::{DCacheController, DCachePolicy, ICacheController, ICachePolicy, L1Config};
use wpsdm::cpu::{CpuConfig, Processor};
use wpsdm::energy::ProcessorEnergyModel;
use wpsdm::mem::{HierarchyConfig, MemoryHierarchy};
use wpsdm::predictors::HybridBranchPredictor;
use wpsdm::workloads::{Benchmark, TraceConfig, TraceGenerator};

fn simulate(policy: DCachePolicy) -> Result<wpsdm::cpu::SimResult, Box<dyn std::error::Error>> {
    let dcache = DCacheController::new(L1Config::paper_dcache(), policy)?;
    let icache = ICacheController::new(L1Config::paper_icache(), ICachePolicy::WayPredict)?;
    let hierarchy = MemoryHierarchy::new(HierarchyConfig::default())?;
    let mut cpu = Processor::new(
        CpuConfig::default(),
        dcache,
        icache,
        hierarchy,
        HybridBranchPredictor::default(),
    );
    let trace = TraceGenerator::new(TraceConfig::new(Benchmark::Perl).with_ops(200_000));
    Ok(cpu.run(trace))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let baseline = simulate(DCachePolicy::Parallel)?;
    let technique = simulate(DCachePolicy::SelDmWayPredict)?;

    let dcache = technique.dcache_relative_to(&baseline);
    let model = ProcessorEnergyModel::default();
    let processor = technique.processor_relative_to(&baseline, &model);

    println!("workload: perl-like synthetic trace, 200k micro-ops");
    println!(
        "baseline   : {:>9} cycles, IPC {:.2}, d-cache miss rate {:.1} %",
        baseline.cycles,
        baseline.activity.ipc(),
        baseline.dcache.miss_rate_percent()
    );
    println!(
        "selective-DM + way-prediction: {:>9} cycles ({:+.1} % time)",
        technique.cycles,
        technique.performance_degradation_vs(&baseline) * 100.0
    );
    println!(
        "d-cache energy-delay savings : {:.1} % (paper reports ~69 % on average)",
        dcache.energy_delay_savings() * 100.0
    );
    println!(
        "d-cache access breakdown     : DM {:.0} %, parallel {:.0} %, way-predicted {:.0} %, \
         sequential {:.0} %, mispredicted {:.0} %",
        technique.dcache.access_breakdown()[0] * 100.0,
        technique.dcache.access_breakdown()[1] * 100.0,
        technique.dcache.access_breakdown()[2] * 100.0,
        technique.dcache.access_breakdown()[3] * 100.0,
        technique.dcache.access_breakdown()[4] * 100.0,
    );
    println!(
        "overall processor energy-delay savings: {:.1} % (paper reports ~8 %)",
        processor.energy_delay_savings() * 100.0
    );
    Ok(())
}
