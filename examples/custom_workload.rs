//! Using the cache controllers directly, without the processor model or the
//! built-in SPEC-like workloads: replay a hand-written access pattern (a
//! stencil sweep over two arrays plus a hot look-up table) against several
//! d-cache policies and compare energy per access.
//!
//! This is the integration path for users who already have an address trace
//! of their own application.
//!
//! Run with `cargo run --release --example custom_workload`.

use wpsdm::cache::{DCacheController, DCachePolicy, L1Config};

/// A tiny hand-rolled trace: (pc, address) pairs of loads.
fn stencil_trace() -> Vec<(u64, u64)> {
    let mut trace = Vec::new();
    let a_base = 0x1000_0000u64;
    // Offset the output array by a few blocks, as a cache-conscious stencil
    // would, so the two streams do not sit in the same direct-mapping ways.
    let b_base = 0x2000_0000u64 + 0x1a0;
    let table = 0x3000_0000u64 + 0x340;
    for iteration in 0..2_000u64 {
        let i = iteration * 8;
        // Three-point stencil over array A (one load PC per tap).
        trace.push((0x400, a_base + i));
        trace.push((0x404, a_base + i + 8));
        trace.push((0x408, a_base + i + 16));
        // Output array B read-modify-write (modelled as a load here).
        trace.push((0x40c, b_base + i));
        // Hot 2 KB lookup table indexed by the low bits.
        trace.push((0x410, table + (i * 37) % 2048));
    }
    trace
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trace = stencil_trace();
    println!(
        "custom stencil workload: {} loads over two streaming arrays and a hot table\n",
        trace.len()
    );
    println!(
        "{:<18} {:>12} {:>14} {:>16}",
        "policy", "miss rate %", "energy/access", "vs parallel"
    );

    let mut parallel_energy_per_access = None;
    for policy in [
        DCachePolicy::Parallel,
        DCachePolicy::Sequential,
        DCachePolicy::WayPredictPc,
        DCachePolicy::SelDmWayPredict,
        DCachePolicy::SelDmSequential,
    ] {
        let mut cache = DCacheController::new(L1Config::paper_dcache(), policy)?;
        for &(pc, addr) in &trace {
            cache.load(pc, addr, addr);
        }
        let stats = cache.stats();
        let per_access = stats.total_energy() / stats.accesses() as f64;
        let parallel = *parallel_energy_per_access.get_or_insert(per_access);
        println!(
            "{:<18} {:>12.2} {:>14.1} {:>15.2}x",
            policy.label(),
            stats.miss_rate_percent(),
            per_access,
            per_access / parallel
        );
    }
    println!(
        "\nStreaming, non-conflicting loads are exactly the case selective direct-mapping is \
         built for: nearly every access probes a single way at ~0.2x the parallel-read energy."
    );
    Ok(())
}
