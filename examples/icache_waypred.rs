//! I-cache way-prediction demo: drive the fetch-integrated way predictor
//! (BTB way fields, SAWP, RAS) directly with the fetch stream of a branchy
//! integer benchmark and a floating-point benchmark, and show where the
//! predictions come from — the Figure 10 access breakdown.
//!
//! Run with `cargo run --release --example icache_waypred`.

use wpsdm::cache::{DCacheController, DCachePolicy};
use wpsdm::cache::{ICacheController, ICachePolicy, L1Config};
use wpsdm::cpu::{CpuConfig, Processor};
use wpsdm::mem::{HierarchyConfig, MemoryHierarchy};
use wpsdm::predictors::HybridBranchPredictor;
use wpsdm::workloads::{Benchmark, TraceConfig, TraceGenerator};

fn run(
    benchmark: Benchmark,
    policy: ICachePolicy,
) -> Result<wpsdm::cpu::SimResult, Box<dyn std::error::Error>> {
    let dcache = DCacheController::new(L1Config::paper_dcache(), DCachePolicy::Parallel)?;
    let icache = ICacheController::new(L1Config::paper_icache(), policy)?;
    let hierarchy = MemoryHierarchy::new(HierarchyConfig::default())?;
    let mut cpu = Processor::new(
        CpuConfig::default(),
        dcache,
        icache,
        hierarchy,
        HybridBranchPredictor::default(),
    );
    let trace = TraceGenerator::new(TraceConfig::new(benchmark).with_ops(200_000));
    Ok(cpu.run(trace))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("i-cache way-prediction (16 KB, 4-way), per benchmark:\n");
    for benchmark in [
        Benchmark::M88ksim,
        Benchmark::Go,
        Benchmark::Applu,
        Benchmark::Fpppp,
    ] {
        let baseline = run(benchmark, ICachePolicy::Parallel)?;
        let predicted = run(benchmark, ICachePolicy::WayPredict)?;
        let metrics = predicted.icache_relative_to(&baseline);
        let [sawp, btb, none, mispredicted] = predicted.icache.access_breakdown();
        println!(
            "{:8}  energy-delay savings {:>5.1} %   accuracy {:>5.1} %   \
             sources: SAWP {:>4.1} %, BTB/RAS {:>4.1} %, none {:>4.1} %, mispredicted {:>4.1} %",
            benchmark.name(),
            metrics.energy_delay_savings() * 100.0,
            predicted.icache.way_prediction_accuracy() * 100.0,
            sawp * 100.0,
            btb * 100.0,
            none * 100.0,
            mispredicted * 100.0,
        );
    }
    println!(
        "\nBranch-heavy integer codes lean on the BTB and RAS; floating-point codes with long \
         basic blocks lean on the SAWP; fpppp's code footprint thrashes the i-cache and drags \
         its accuracy down — exactly the structure of the paper's Figure 10."
    );
    Ok(())
}
